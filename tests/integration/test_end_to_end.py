"""End-to-end properties of the whole simulated system."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.api import scatter_add_reference, simulate_scatter_add
from repro.config import MachineConfig


CONFIG_VARIANTS = {
    "table1": MachineConfig.table1(),
    "uniform": MachineConfig.uniform(),
    "tiny_cache": MachineConfig(cache_size_bytes=2048,
                                cache_associativity=2),
    "one_entry_store": MachineConfig(combining_store_entries=1),
    "single_bank": MachineConfig(cache_banks=1),
    "two_units_per_bank": MachineConfig(scatter_add_units_per_bank=2),
    "slow_uniform": MachineConfig.uniform(latency=128, interval=8),
}


class TestEveryConfigurationIsExact:
    @pytest.mark.parametrize("name", sorted(CONFIG_VARIANTS))
    def test_random_trace_exact(self, name, rng):
        config = CONFIG_VARIANTS[name]
        indices = rng.integers(0, 512, size=4096)
        values = rng.standard_normal(4096)
        run = simulate_scatter_add(indices, values, num_targets=512,
                                   config=config)
        expected = scatter_add_reference(np.zeros(512), indices, values)
        assert np.allclose(run.result, expected, rtol=1e-12, atol=1e-9), name

    @pytest.mark.parametrize("name", sorted(CONFIG_VARIANTS))
    def test_hotspot_trace_exact(self, name):
        config = CONFIG_VARIANTS[name]
        indices = np.zeros(512, dtype=np.int64)
        run = simulate_scatter_add(indices, 1.0, num_targets=4,
                                   config=config)
        assert run.result[0] == 512.0


class TestDeterminism:
    def test_same_input_same_cycles_and_result(self, rng):
        indices = rng.integers(0, 256, size=2048)
        values = rng.standard_normal(2048)
        first = simulate_scatter_add(indices, values, num_targets=256)
        second = simulate_scatter_add(indices, values, num_targets=256)
        assert first.cycles == second.cycles
        # Bitwise identical, not just close: the hardware's reordering is
        # "consistent in the hardware and repeatable for each run" (S3.3).
        assert np.array_equal(first.result, second.result)

    def test_floating_point_order_repeatable(self):
        # Values chosen so different addition orders give different
        # rounding; repeatability means the same order every run.
        values = np.array([1e16, 1.0, -1e16, 1.0] * 64)
        indices = np.zeros(len(values), dtype=np.int64)
        runs = [simulate_scatter_add(indices, values, num_targets=1)
                for _ in range(3)]
        results = {float(run.result[0]) for run in runs}
        assert len(results) == 1


class TestPerformanceSanity:
    def test_throughput_bounded_by_bank_rate(self, rng):
        # 8 banks x 1 request/cycle: n adds can never finish faster than
        # n/8 cycles.
        indices = rng.integers(0, 4096, size=8192)
        run = simulate_scatter_add(indices, 1.0, num_targets=4096)
        assert run.cycles >= 8192 / 8

    def test_more_banks_only_help_spread_traffic(self, rng):
        indices = rng.integers(0, 4096, size=4096)
        one_bank = simulate_scatter_add(
            indices, 1.0, num_targets=4096,
            config=MachineConfig(cache_banks=1))
        eight_banks = simulate_scatter_add(
            indices, 1.0, num_targets=4096,
            config=MachineConfig(cache_banks=8))
        assert eight_banks.cycles < one_bank.cycles

    def test_chaining_ablation_slower_on_hotspots(self):
        indices = np.zeros(256, dtype=np.int64)
        chained = simulate_scatter_add(indices, 1.0, num_targets=1,
                                       chaining=True)
        unchained = simulate_scatter_add(indices, 1.0, num_targets=1,
                                         chaining=False)
        assert unchained.cycles > chained.cycles

    @settings(max_examples=10, deadline=None)
    @given(st.integers(1, 6))
    def test_work_scales_cycles(self, doubling):
        indices = np.arange(64 * (1 << doubling)) % 1024
        run = simulate_scatter_add(indices, 1.0, num_targets=1024)
        # cycles grow at least linearly past the fixed overhead
        assert run.cycles >= len(indices) / 8

"""Loose performance-regression guards.

These are not paper comparisons; they pin simulated cycle counts for
canonical runs inside wide brackets so an accidental 5-10x timing
regression (a lost overlap, an accidental serialisation) fails CI while
legitimate small model changes do not.
"""

import numpy as np
import pytest

from repro.api import simulate_scatter_add
from repro.config import MachineConfig


@pytest.fixture(scope="module")
def trace():
    return np.random.default_rng(0).integers(0, 2048, size=8192)


class TestCycleBrackets:
    def test_base_machine_histogram(self, trace):
        run = simulate_scatter_add(trace, 1.0, num_targets=2048)
        # 8192 adds: >= n/8 (bank bound), expect a few k cycles.
        assert 1024 <= run.cycles <= 15_000

    def test_uniform_machine(self, trace):
        config = MachineConfig.uniform()
        run = simulate_scatter_add(trace[:512], 1.0, num_targets=2048,
                                   config=config)
        # read+write per add at 1 word / 2 cycles: ~2k cycles + latency.
        assert 1_000 <= run.cycles <= 10_000

    def test_hot_address_chain(self):
        indices = np.zeros(512, dtype=np.int64)
        run = simulate_scatter_add(indices, 1.0, num_targets=1)
        # one chain: ~fu_latency per add, plus overheads.
        config = MachineConfig.table1()
        lower = 512 * config.fu_latency
        assert lower <= run.cycles <= 3 * lower

    def test_steady_state_throughput_floor(self, trace):
        # The 8-bank machine must sustain at least 1.2 adds/cycle on
        # uniform traffic (measured ~1.8-2.3; guard well below).
        run = simulate_scatter_add(trace, 1.0, num_targets=2048)
        assert len(trace) / run.cycles > 1.2

    def test_overhead_floor_small_input(self):
        run = simulate_scatter_add([0, 1, 2], 1.0, num_targets=4)
        config = MachineConfig.table1()
        assert run.cycles >= config.stream_op_overhead
        assert run.cycles <= 4 * config.stream_op_overhead

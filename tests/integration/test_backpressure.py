"""Targeted tests for back-pressure retry paths.

Every producer in the model must hold (not drop) its output when a
downstream queue is full.  These tests construct the specific full-queue
conditions and verify both forward progress and conservation.
"""

from collections import deque

import numpy as np

from repro.config import MachineConfig
from repro.memory.backing import MainMemory
from repro.memory.dram import UniformMemory
from repro.memory.request import (
    OP_READ,
    OP_SCATTER_ADD,
    OP_WRITE,
    MemoryRequest,
)
from repro.core.unit import ScatterAddUnit
from repro.sim.engine import Component, Simulator
from repro.sim.stats import Stats

from tests.conftest import Feeder


class SlowSink(Component):
    """A response consumer that accepts only one message every k cycles."""

    def __init__(self, sim, period=7, capacity=1):
        super().__init__("slow_sink")
        self.fifo = sim.fifo(capacity=capacity, name="slow_sink.in")
        self.period = period
        self.received = []

    def tick(self, now):
        if now % self.period == 0 and len(self.fifo):
            self.received.append(self.fifo.pop())


class TestMemoryEndpointRetry:
    def test_responses_survive_full_reply_fifo(self):
        config = MachineConfig.uniform(latency=2, interval=1)
        sim = Simulator()
        stats = Stats()
        endpoint = UniformMemory(sim, config, MainMemory(), stats)
        sink = SlowSink(sim, period=9, capacity=1)
        sim.register(sink)
        sim.register(Feeder(endpoint.req_in, [
            MemoryRequest(OP_READ, addr, reply_to=sink.fifo)
            for addr in range(12)
        ], per_cycle=4))
        sim.run()
        assert len(sink.received) == 12
        assert [r.addr for r in sink.received] == list(range(12))


class TestUnitRetryPaths:
    def test_acks_survive_full_reply_fifo(self):
        config = MachineConfig.uniform()
        sim = Simulator()
        stats = Stats()
        memory = MainMemory()
        endpoint = UniformMemory(sim, config, memory, stats)
        unit = sim.register(ScatterAddUnit(sim, config, stats,
                                           endpoint.req_in))
        sink = SlowSink(sim, period=11, capacity=1)
        sim.register(sink)
        sim.register(Feeder(unit.req_in, [
            MemoryRequest(OP_SCATTER_ADD, index % 3, 1.0,
                          reply_to=sink.fifo, tag=index)
            for index in range(15)
        ], per_cycle=2))
        sim.run()
        assert sorted(r.tag for r in sink.received) == list(range(15))
        assert sum(memory.read_word(addr) for addr in range(3)) == 15.0

    def test_bypass_blocked_by_slow_memory(self):
        # Memory with a huge interval back-pressures the unit's bypass
        # path; writes must still all land, in order.
        config = MachineConfig.uniform(interval=13, latency=1)
        sim = Simulator()
        stats = Stats()
        memory = MainMemory()
        endpoint = UniformMemory(sim, config, memory, stats)
        unit = sim.register(ScatterAddUnit(sim, config, stats,
                                           endpoint.req_in))
        sim.register(Feeder(unit.req_in, [
            MemoryRequest(OP_WRITE, addr, float(addr))
            for addr in range(10)
        ], per_cycle=4))
        sim.run()
        for addr in range(10):
            assert memory.read_word(addr) == float(addr)


class TestConservationUnderChaos:
    def test_interleaved_ops_slow_sink_slow_memory(self, rng):
        config = MachineConfig.uniform(interval=5, latency=37,
                                       combining_store_entries=3)
        sim = Simulator()
        stats = Stats()
        memory = MainMemory()
        endpoint = UniformMemory(sim, config, memory, stats)
        unit = sim.register(ScatterAddUnit(sim, config, stats,
                                           endpoint.req_in))
        sink = SlowSink(sim, period=6, capacity=2)
        sim.register(sink)

        expected = np.zeros(8)
        requests = deque()
        for index in range(120):
            addr = int(rng.integers(0, 8))
            if index % 4 == 0:
                reply = sink.fifo
            else:
                reply = None
            requests.append(MemoryRequest(OP_SCATTER_ADD, addr, 1.0,
                                          reply_to=reply, tag=index))
            expected[addr] += 1.0
        sim.register(Feeder(unit.req_in, list(requests), per_cycle=1))
        sim.run()
        actual = memory.export_array(0, 8)
        assert np.array_equal(actual, expected)
        assert len(sink.received) == 30  # every fourth request acked

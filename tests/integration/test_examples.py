"""Smoke tests: every example script runs to completion.

Each example verifies its own results with asserts, so a clean exit is a
meaningful check.  The sizes here are the scripts' defaults (the heavy
paper-scale paths hide behind ``--full``); the slowest scripts are capped
by reusing their machinery at reduced size instead of executing the file.
"""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "histogram_equalization.py",
    "parallel_queue.py",
    "particle_in_cell.py",
    "sparse_matrix.py",
    "iterative_solver.py",
    "scatter_extensions.py",
    "microarchitecture_tour.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [script])
    runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip()  # produced some report


def test_molecular_dynamics_reduced(capsys, monkeypatch):
    # The MD example's default (150 molecules) is a few seconds; fine.
    monkeypatch.setattr(sys, "argv", ["molecular_dynamics.py"])
    runpy.run_path(str(EXAMPLES / "molecular_dynamics.py"),
                   run_name="__main__")
    out = capsys.readouterr().out
    assert "HW scatter-add beats duplication" in out


def test_multinode_scaling_example(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["multinode_scaling.py"])
    runpy.run_path(str(EXAMPLES / "multinode_scaling.py"),
                   run_name="__main__")
    out = capsys.readouterr().out
    assert "GB/s" in out


def test_all_examples_exist_and_have_docstrings():
    scripts = sorted(EXAMPLES.glob("*.py"))
    assert len(scripts) >= 10
    for script in scripts:
        text = script.read_text()
        assert text.lstrip().startswith(('#!/usr/bin/env python')), script
        assert '"""' in text, script

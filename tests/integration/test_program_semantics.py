"""Property test: arbitrary phased stream programs match a functional model.

Phases are synchronisation points: a phase's effects are complete before
the next phase starts.  This test generates random programs (gathers,
scatters, scatter-adds over one region, one memory op per phase so the
functional order is defined), plays them against a plain-python memory
model, and checks both the final memory image and every gather's
observed values.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.config import MachineConfig
from repro.node.processor import StreamProcessor
from repro.node.program import Gather, Phase, Scatter, ScatterAdd, StreamProgram

REGION = 32

op_strategy = st.tuples(
    st.sampled_from(["gather", "scatter", "scatter_add"]),
    st.lists(st.integers(0, REGION - 1), min_size=1, max_size=24),
    st.integers(0, 1_000_000),  # value seed
)


def build(ops):
    """Construct simulator ops and the functional expectation."""
    phases = []
    expected_memory = np.zeros(REGION)
    expected_gathers = []
    gather_ops = []
    for kind, addrs, seed in ops:
        rng = np.random.default_rng(seed)
        values = np.round(rng.uniform(-8, 8, size=len(addrs)), 3)
        if kind == "gather":
            op = Gather(list(addrs))
            gather_ops.append(op)
            expected_gathers.append([expected_memory[a] for a in addrs])
        elif kind == "scatter":
            # In-phase scatter order to a repeated address is not defined;
            # make addresses unique so the functional model is exact.
            unique = sorted(set(addrs))
            values = values[:len(unique)]
            op = Scatter(unique, list(values))
            for addr, value in zip(unique, values):
                expected_memory[addr] = value
        else:
            op = ScatterAdd(list(addrs), list(values))
            np.add.at(expected_memory, list(addrs), values)
        phases.append(Phase([op]))
    return phases, expected_memory, expected_gathers, gather_ops


class TestProgramSemantics:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(op_strategy, min_size=1, max_size=8))
    def test_random_programs_match_functional_model(self, ops):
        phases, expected_memory, expected_gathers, gather_ops = build(ops)
        processor = StreamProcessor(MachineConfig.table1())
        processor.run(StreamProgram(phases))
        final = processor.read_result(0, REGION)
        assert np.allclose(final, expected_memory, rtol=1e-12, atol=1e-12)
        for op, expected in zip(gather_ops, expected_gathers):
            assert np.allclose(op.result, expected, rtol=1e-12, atol=1e-12)

    @settings(max_examples=10, deadline=None)
    @given(st.lists(op_strategy, min_size=1, max_size=6))
    def test_uniform_memory_model_agrees(self, ops):
        phases, expected_memory, expected_gathers, gather_ops = build(ops)
        processor = StreamProcessor(MachineConfig.uniform())
        processor.run(StreamProgram(phases))
        final = processor.read_result(0, REGION)
        assert np.allclose(final, expected_memory, rtol=1e-12, atol=1e-12)
        for op, expected in zip(gather_ops, expected_gathers):
            assert np.allclose(op.result, expected, rtol=1e-12, atol=1e-12)

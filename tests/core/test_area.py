"""Tests for the die-area model."""

from repro.core.area import AreaModel


class TestAreaModel:
    def test_paper_base_configuration(self):
        """Eight units must cost under 2% of the 10mm x 10mm die."""
        model = AreaModel(units=8, combining_store_entries=8)
        assert model.die_fraction < 0.02
        assert abs(model.unit_area_mm2 - 0.2) < 1e-9

    def test_area_scales_with_units(self):
        assert (AreaModel(units=16).total_area_mm2
                == 2 * AreaModel(units=8).total_area_mm2)

    def test_area_grows_with_store_entries(self):
        small = AreaModel(combining_store_entries=8)
        large = AreaModel(combining_store_entries=64)
        assert large.unit_area_mm2 > small.unit_area_mm2
        # Even a 64-entry store stays cheap relative to the die.
        assert large.die_fraction < 0.04

    def test_summary_mentions_percentage(self):
        text = AreaModel().summary()
        assert "%" in text
        assert "mm^2" in text

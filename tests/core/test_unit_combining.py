"""Unit-level tests of the scatter-add unit's cache-combining mode.

System-level combining is covered by the multi-node tests; these pin the
unit+bank contract in isolation: no memory read on activation, identity
start, delta merge into the bank, sum-back on eviction.
"""

import pytest

from repro.cache.bank import CacheBank
from repro.config import MachineConfig
from repro.core.unit import ScatterAddUnit
from repro.memory.backing import MainMemory
from repro.memory.dram import DRAMSystem
from repro.memory.request import OP_SCATTER_ADD, MemoryRequest
from repro.sim.engine import Simulator
from repro.sim.stats import Stats

from tests.conftest import Feeder


class CombiningHarness:
    """SAU in front of one cache bank with a sum-back recorder."""

    def __init__(self, config=None):
        self.config = config or MachineConfig(cache_banks=1)
        self.sim = Simulator()
        self.stats = Stats()
        self.memory = MainMemory()
        self.dram = DRAMSystem(self.sim, self.config, self.memory,
                               self.stats)
        self.sumbacks = []

        def sink(addr, value):
            self.sumbacks.append((addr, value))
            return True

        self.bank = CacheBank(self.sim, self.config, self.stats,
                              self.dram.req_in, sumback_sink=sink)
        self.unit = self.sim.register(ScatterAddUnit(
            self.sim, self.config, self.stats, self.bank.req_in))

    def run(self, requests):
        self.sim.register(Feeder(self.unit.req_in, requests))
        return self.sim.run()


def combining(addr, value):
    return MemoryRequest(OP_SCATTER_ADD, addr, value, combining=True)


class TestCombiningMode:
    def test_no_memory_read_on_activation(self):
        harness = CombiningHarness()
        harness.memory.write_word(5, 100.0)  # must never be fetched
        harness.run([combining(5, 2.0)])
        assert harness.stats.get("dram.reads") == 0
        assert harness.bank.peek_word(5) == 2.0  # pure delta, not 102

    def test_chain_accumulates_delta_only(self):
        harness = CombiningHarness()
        harness.memory.write_word(9, 50.0)
        harness.run([combining(9, 1.0) for _ in range(12)])
        assert harness.bank.peek_word(9) == 12.0
        # DRAM copy untouched until a sum-back/flush merges it.
        assert harness.memory.read_word(9) == 50.0

    def test_acks_sent_for_combining_requests(self):
        harness = CombiningHarness()
        acked = []

        class Recorder:
            @staticmethod
            def can_push():
                return True

            @staticmethod
            def push(response):
                acked.append(response.tag)

        requests = [MemoryRequest(OP_SCATTER_ADD, 3, 1.0, combining=True,
                                  reply_to=Recorder, tag=i)
                    for i in range(5)]
        harness.run(requests)
        assert sorted(acked) == [0, 1, 2, 3, 4]

    def test_eviction_sums_back_delta(self):
        config = MachineConfig(cache_banks=1, cache_size_bytes=64,
                               cache_associativity=1)
        harness = CombiningHarness(config)
        harness.run([combining(0, 7.0)])
        # conflict-evict the combining line with plain writes elsewhere
        stride = config.cache_line_words * config.cache_sets_per_bank
        harness.run([
            MemoryRequest("write", stride, 1.0),
            MemoryRequest("write", 2 * stride, 1.0),
        ])
        assert (0, 7.0) in harness.sumbacks

    def test_flush_then_drain_merges_once(self):
        harness = CombiningHarness()
        harness.memory.write_word(2, 10.0)
        harness.run([combining(2, 5.0)])
        harness.bank.drain_to(harness.memory)
        assert harness.memory.read_word(2) == 15.0
        # a second drain must not double-merge
        harness.bank.drain_to(harness.memory)
        assert harness.memory.read_word(2) == 15.0

    def test_mixed_combining_and_plain_addresses(self):
        harness = CombiningHarness()
        harness.memory.write_word(20, 3.0)
        harness.run([
            combining(4, 1.0),
            MemoryRequest(OP_SCATTER_ADD, 20, 2.0),  # plain RMW path
            combining(4, 1.0),
        ])
        assert harness.bank.peek_word(4) == 2.0  # delta
        assert harness.bank.peek_word(20) == 5.0  # true value

"""Tests for the pipelined functional unit."""

import pytest

from repro.core.fu import AddPipeline
from repro.memory.request import (
    OP_SCATTER_ADD,
    OP_SCATTER_MAX,
    OP_SCATTER_MIN,
    OP_SCATTER_MUL,
)


class TestAddPipeline:
    def test_result_after_latency(self):
        fu = AddPipeline(latency=4)
        fu.issue(OP_SCATTER_ADD, 1.0, 2.0, meta="m", now=0)
        for now in range(4):
            assert fu.completed(now) is None
        result, old, meta = fu.completed(4)
        assert result == 3.0
        assert old == 1.0
        assert meta == "m"

    def test_single_issue_per_cycle(self):
        fu = AddPipeline(latency=2)
        fu.issue(OP_SCATTER_ADD, 0.0, 1.0, None, now=0)
        assert not fu.can_issue(0)
        with pytest.raises(OverflowError):
            fu.issue(OP_SCATTER_ADD, 0.0, 1.0, None, now=0)
        assert fu.can_issue(1)

    def test_fully_pipelined(self):
        fu = AddPipeline(latency=4)
        for now in range(8):
            fu.issue(OP_SCATTER_ADD, float(now), 1.0, now, now=now)
            done = fu.completed(now)
            if now >= 4:
                assert done is not None
                assert done[2] == now - 4
        assert fu.total_ops == 8

    def test_results_in_issue_order(self):
        fu = AddPipeline(latency=1)
        fu.issue(OP_SCATTER_ADD, 0.0, 1.0, "a", now=0)
        fu.issue(OP_SCATTER_ADD, 0.0, 2.0, "b", now=1)
        assert fu.completed(1)[2] == "a"
        assert fu.completed(2)[2] == "b"

    def test_extended_operations(self):
        fu = AddPipeline(latency=1)
        cases = [
            (OP_SCATTER_MIN, 3.0, 1.0, 1.0),
            (OP_SCATTER_MAX, 3.0, 5.0, 5.0),
            (OP_SCATTER_MUL, 3.0, 2.0, 6.0),
        ]
        for now, (op, old, operand, expected) in enumerate(cases):
            fu.issue(op, old, operand, None, now=now)
            assert fu.completed(now + 1)[0] == expected

    def test_busy_tracks_in_flight(self):
        fu = AddPipeline(latency=3)
        assert not fu.busy
        fu.issue(OP_SCATTER_ADD, 0.0, 1.0, None, now=0)
        assert fu.busy
        fu.completed(3)
        assert not fu.busy

    def test_invalid_latency(self):
        with pytest.raises(ValueError):
            AddPipeline(latency=0)

"""Tests for the scatter-add unit (the Figure 5 controller)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import MachineConfig
from repro.memory.request import (
    OP_FETCH_ADD,
    OP_READ,
    OP_SCATTER_ADD,
    OP_SCATTER_MAX,
    OP_SCATTER_MIN,
    OP_SCATTER_MUL,
    OP_WRITE,
    MemoryRequest,
)

from tests.conftest import UnitHarness


def sa(addr, value, reply_to=None, tag=None):
    return MemoryRequest(OP_SCATTER_ADD, addr, value, reply_to=reply_to,
                         tag=tag)


class TestScatterAddUnit:
    def test_single_add(self):
        harness = UnitHarness()
        harness.memory.write_word(3, 10.0)
        harness.run([sa(3, 2.5)])
        assert harness.memory.read_word(3) == 12.5

    def test_same_address_chain_is_atomic(self):
        harness = UnitHarness()
        harness.run([sa(7, 1.0) for _ in range(20)])
        assert harness.memory.read_word(7) == 20.0

    def test_distinct_addresses_pipeline(self):
        harness = UnitHarness()
        harness.run([sa(addr, float(addr)) for addr in range(10)])
        for addr in range(10):
            assert harness.memory.read_word(addr) == float(addr)

    def test_combining_reduces_memory_traffic(self):
        # 32 adds to one address: one read + one write, not 32 of each.
        harness = UnitHarness()
        harness.run([sa(0, 1.0) for _ in range(32)])
        assert harness.stats.get("mem.reads") == 1
        assert harness.stats.get("mem.writes") == 1
        assert harness.memory.read_word(0) == 32.0

    def test_acknowledgement_per_request(self):
        harness = UnitHarness()
        requests = [sa(0, 1.0, reply_to=harness.reply_fifo, tag=i)
                    for i in range(5)]
        harness.run(requests)
        assert sorted(r.tag for r in harness.responses) == [0, 1, 2, 3, 4]

    def test_bypass_plain_write(self):
        harness = UnitHarness()
        harness.run([MemoryRequest(OP_WRITE, 4, 9.0)])
        assert harness.memory.read_word(4) == 9.0
        assert harness.stats.get(harness.unit.name + ".bypassed") == 1

    def test_bypass_read_returns_data(self):
        harness = UnitHarness()
        harness.memory.write_word(4, 6.0)
        harness.run([MemoryRequest(OP_READ, 4, reply_to=harness.reply_fifo)])
        assert harness.responses[0].value == 6.0

    def test_write_then_scatter_add_ordering(self):
        harness = UnitHarness()
        harness.run([MemoryRequest(OP_WRITE, 2, 10.0), sa(2, 1.0)])
        assert harness.memory.read_word(2) == 11.0

    def test_fetch_add_returns_pre_update_values(self):
        harness = UnitHarness()
        requests = [MemoryRequest(OP_FETCH_ADD, 0, 1.0,
                                  reply_to=harness.reply_fifo, tag=i)
                    for i in range(4)]
        harness.run(requests)
        assert harness.memory.read_word(0) == 4.0
        # Pre-update values are a permutation of 0..3 (each observed once):
        # this is exactly the parallel queue-allocation property.
        values = sorted(r.value for r in harness.responses)
        assert values == [0.0, 1.0, 2.0, 3.0]

    def test_extended_min_max_mul(self):
        harness = UnitHarness()
        harness.memory.write_word(0, 5.0)
        harness.memory.write_word(1, 5.0)
        harness.memory.write_word(2, 5.0)
        harness.run([
            MemoryRequest(OP_SCATTER_MIN, 0, 3.0),
            MemoryRequest(OP_SCATTER_MIN, 0, 7.0),
            MemoryRequest(OP_SCATTER_MAX, 1, 9.0),
            MemoryRequest(OP_SCATTER_MAX, 1, 2.0),
            MemoryRequest(OP_SCATTER_MUL, 2, 2.0),
            MemoryRequest(OP_SCATTER_MUL, 2, 4.0),
        ])
        assert harness.memory.read_word(0) == 3.0
        assert harness.memory.read_word(1) == 9.0
        assert harness.memory.read_word(2) == 40.0

    def test_stalls_when_store_full_but_completes(self):
        config = MachineConfig.uniform(combining_store_entries=2,
                                       latency=32)
        harness = UnitHarness(config)
        harness.run([sa(addr, 1.0) for addr in range(12)])
        for addr in range(12):
            assert harness.memory.read_word(addr) == 1.0
        assert harness.stats.get(harness.unit.name + ".stall_cycles") > 0

    def test_chaining_disabled_still_correct(self):
        harness = UnitHarness(chaining=False)
        harness.run([sa(5, 1.0) for _ in range(16)])
        assert harness.memory.read_word(5) == 16.0
        assert harness.stats.get(harness.unit.name + ".chained") == 0
        # Without chaining every update round-trips through memory.
        assert harness.stats.get("mem.writes") == 16

    def test_chaining_enabled_writes_once(self):
        harness = UnitHarness(chaining=True)
        harness.run([sa(5, 1.0) for _ in range(16)])
        assert harness.stats.get("mem.writes") == 1
        assert harness.stats.get(harness.unit.name + ".chained") == 15

    def test_latency_tolerance_with_large_store(self):
        slow = MachineConfig.uniform(latency=256,
                                     combining_store_entries=2)
        large = MachineConfig.uniform(latency=256,
                                      combining_store_entries=64)
        requests = [sa(addr, 1.0) for addr in range(64)]
        h_small = UnitHarness(slow)
        cycles_small = h_small.run(list(requests))
        h_large = UnitHarness(large)
        cycles_large = h_large.run(list(requests))
        assert cycles_large < cycles_small / 4

    def test_mixed_bypass_and_atomic_traffic(self, rng):
        """Interleaved plain writes and atomics to *disjoint* addresses.

        (Same-address write/atomic interleavings are deliberately racy:
        the bypass path carries no ordering guarantee against the
        combining store, exactly as in the paper's design -- streams must
        synchronise at operation boundaries.)
        """
        harness = UnitHarness()
        expected = {}
        requests = []
        for i in range(100):
            if rng.random() < 0.3:
                addr = int(rng.integers(0, 8))  # write-only region
                value = float(i)
                requests.append(MemoryRequest(OP_WRITE, addr, value))
                expected[addr] = value
            else:
                addr = int(rng.integers(8, 16))  # atomic-only region
                requests.append(sa(addr, 1.0))
                expected[addr] = expected.get(addr, 0.0) + 1.0
        harness.run(requests)
        for addr, value in expected.items():
            assert harness.memory.read_word(addr) == value

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.tuples(st.integers(0, 7),
                           st.floats(min_value=-100, max_value=100,
                                     allow_nan=False)),
                 min_size=1, max_size=60),
        st.sampled_from([1, 2, 4, 8, 64]),
        st.booleans(),
    )
    def test_property_sum_matches_reference(self, updates, entries,
                                            chaining):
        config = MachineConfig.uniform(combining_store_entries=entries)
        harness = UnitHarness(config, chaining=chaining)
        harness.run([sa(addr, value) for addr, value in updates])
        expected = np.zeros(8)
        for addr, value in updates:
            expected[addr] += value
        actual = harness.memory.export_array(0, 8)
        assert np.allclose(actual, expected, rtol=1e-12, atol=1e-9)

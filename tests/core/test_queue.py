"""Tests for parallel queue allocation via fetch-add (Section 3.3)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import MachineConfig
from repro.core.queue import ParallelQueueAllocator


class TestParallelQueueAllocator:
    def test_slots_dense_and_unique_per_queue(self, rng, table1):
        allocator = ParallelQueueAllocator(table1, num_queues=4)
        queue_ids = rng.integers(0, 4, size=200)
        allocation = allocator.allocate(queue_ids)
        for queue in range(4):
            slots = sorted(allocation.slots[queue_ids == queue])
            assert slots == list(range(len(slots)))

    def test_counts_match_occupancy(self, rng, table1):
        allocator = ParallelQueueAllocator(table1, num_queues=8)
        queue_ids = rng.integers(0, 8, size=300)
        allocation = allocator.allocate(queue_ids)
        expected = np.bincount(queue_ids, minlength=8)
        assert np.array_equal(allocation.counts, expected)

    def test_empty_allocation(self, table1):
        allocator = ParallelQueueAllocator(table1, num_queues=2)
        allocation = allocator.allocate([])
        assert list(allocation.counts) == [0, 0]

    def test_single_queue_serialises_correctly(self, table1):
        allocator = ParallelQueueAllocator(table1, num_queues=1)
        allocation = allocator.allocate(np.zeros(64, dtype=np.int64))
        assert sorted(allocation.slots) == list(range(64))

    def test_queue_id_out_of_range(self, table1):
        allocator = ParallelQueueAllocator(table1, num_queues=2)
        with pytest.raises(IndexError):
            allocator.allocate([0, 2])

    def test_invalid_queue_count(self, table1):
        with pytest.raises(ValueError):
            ParallelQueueAllocator(table1, num_queues=0)

    def test_timing_reported(self, rng, table1):
        allocator = ParallelQueueAllocator(table1, num_queues=4)
        allocation = allocator.allocate(rng.integers(0, 4, size=100))
        assert allocation.cycles > 0
        assert allocation.microseconds == pytest.approx(
            allocation.cycles / 1000.0)

    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.integers(0, 5), min_size=1, max_size=150))
    def test_property_permutation_within_queue(self, queue_ids):
        allocator = ParallelQueueAllocator(MachineConfig.table1(),
                                           num_queues=6)
        queue_ids = np.asarray(queue_ids)
        allocation = allocator.allocate(queue_ids)
        for queue in range(6):
            slots = sorted(allocation.slots[queue_ids == queue])
            assert slots == list(range(len(slots)))


class TestScatterToQueues:
    def test_values_land_in_their_queue(self, rng, table1):
        allocator = ParallelQueueAllocator(table1, num_queues=3)
        queue_ids = rng.integers(0, 3, size=90)
        values = np.arange(90, dtype=np.float64) + 1000
        allocation, image = allocator.scatter_to_queues(
            queue_ids, values, capacity=64)
        for queue in range(3):
            expected = sorted(values[queue_ids == queue])
            count = int(allocation.counts[queue])
            assert sorted(image[queue][:count]) == expected

    def test_all_values_preserved(self, rng, table1):
        allocator = ParallelQueueAllocator(table1, num_queues=4)
        queue_ids = rng.integers(0, 4, size=120)
        values = rng.standard_normal(120)
        allocation, image = allocator.scatter_to_queues(
            queue_ids, values, capacity=60)
        landed = []
        for queue in range(4):
            landed.extend(image[queue][:int(allocation.counts[queue])])
        assert sorted(landed) == sorted(values.tolist())

    def test_overflow_detected(self, table1):
        allocator = ParallelQueueAllocator(table1, num_queues=2)
        with pytest.raises(OverflowError):
            allocator.scatter_to_queues(np.zeros(10, dtype=np.int64),
                                        np.ones(10), capacity=4)

    def test_length_mismatch(self, table1):
        allocator = ParallelQueueAllocator(table1, num_queues=2)
        with pytest.raises(ValueError):
            allocator.scatter_to_queues([0, 1], [1.0], capacity=4)

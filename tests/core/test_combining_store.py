"""Tests for the combining store."""

import pytest
from hypothesis import given, strategies as st

from repro.core.combining_store import CombiningStore


class TestCombiningStore:
    def test_allocate_and_occupancy(self):
        store = CombiningStore(4)
        store.allocate(10, 1.0, "scatter_add")
        assert store.occupancy == 1
        assert not store.full

    def test_full_raises(self):
        store = CombiningStore(2)
        store.allocate(1, 1.0, "scatter_add")
        store.allocate(2, 1.0, "scatter_add")
        assert store.full
        with pytest.raises(OverflowError):
            store.allocate(3, 1.0, "scatter_add")

    def test_release_frees_entry(self):
        store = CombiningStore(1)
        entry = store.allocate(1, 1.0, "scatter_add")
        store.pop_waiting(1)
        store.release(entry)
        assert store.occupancy == 0
        store.allocate(2, 1.0, "scatter_add")  # reusable

    def test_release_unallocated_raises(self):
        store = CombiningStore(2)
        with pytest.raises(KeyError):
            store.release(0)

    def test_cam_lookup(self):
        store = CombiningStore(4)
        store.allocate(7, 1.0, "scatter_add")
        assert store.has_address(7)
        assert not store.has_address(8)

    def test_pop_waiting_fifo_order_per_address(self):
        store = CombiningStore(4)
        store.allocate(5, 1.0, "scatter_add", tag="first")
        store.allocate(5, 2.0, "scatter_add", tag="second")
        __, entry = store.pop_waiting(5)
        assert entry.tag == "first"
        __, entry = store.pop_waiting(5)
        assert entry.tag == "second"
        with pytest.raises(KeyError):
            store.pop_waiting(5)

    def test_popped_entry_still_occupies_slot(self):
        # "buffers scatter-add requests while an addition is performed"
        store = CombiningStore(1)
        store.allocate(5, 1.0, "scatter_add")
        store.pop_waiting(5)
        assert store.full  # not yet released

    def test_waiting_count(self):
        store = CombiningStore(4)
        assert store.waiting_count(9) == 0
        store.allocate(9, 1.0, "scatter_add")
        store.allocate(9, 1.0, "scatter_add")
        assert store.waiting_count(9) == 2
        store.pop_waiting(9)
        assert store.waiting_count(9) == 1

    def test_min_capacity_validated(self):
        with pytest.raises(ValueError):
            CombiningStore(0)

    def test_peak_occupancy_tracked(self):
        store = CombiningStore(4)
        entries = [store.allocate(i, 1.0, "scatter_add") for i in range(3)]
        for addr, entry in enumerate(entries):
            store.pop_waiting(addr)
            store.release(entry)
        assert store.peak_occupancy == 3

    @given(st.lists(st.integers(0, 5), min_size=1, max_size=16))
    def test_per_address_order_preserved(self, addrs):
        store = CombiningStore(len(addrs))
        for order, addr in enumerate(addrs):
            store.allocate(addr, float(order), "scatter_add", tag=order)
        for addr in sorted(set(addrs)):
            tags = []
            while store.waiting_count(addr):
                __, entry = store.pop_waiting(addr)
                tags.append(entry.tag)
            assert tags == sorted(tags)

"""Tests for prefix sums on the scatter-add hardware."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import MachineConfig
from repro.core.scan import blocked_prefix_sum, fetch_add_prefix_sum


def exclusive_reference(values):
    values = np.asarray(values, dtype=np.float64)
    return np.cumsum(values) - values


class TestFetchAddScan:
    def test_exclusive_prefix_exact(self, rng, table1):
        values = rng.standard_normal(128)
        scan = fetch_add_prefix_sum(values, table1)
        assert np.allclose(scan.exclusive, exclusive_reference(values),
                           rtol=1e-12, atol=1e-12)
        assert scan.total == pytest.approx(values.sum())

    def test_inclusive_view(self, table1):
        values = np.array([1.0, 2.0, 3.0])
        scan = fetch_add_prefix_sum(values, table1)
        assert list(scan.inclusive) == [1.0, 3.0, 6.0]

    def test_serialises_at_fu_latency(self, table1):
        values = np.ones(256)
        scan = fetch_add_prefix_sum(values, table1)
        # one chain: at least fu_latency cycles per element
        assert scan.cycles >= 256 * table1.fu_latency

    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.floats(-50, 50, allow_nan=False), min_size=1,
                    max_size=100))
    def test_property_matches_cumsum(self, values):
        scan = fetch_add_prefix_sum(values, MachineConfig.table1())
        assert np.allclose(scan.exclusive, exclusive_reference(values),
                           rtol=1e-9, atol=1e-9)


class TestBlockedScan:
    def test_exclusive_prefix_exact(self, rng, table1):
        values = rng.standard_normal(1000)
        scan = blocked_prefix_sum(values, table1, block=128)
        assert np.allclose(scan.exclusive, exclusive_reference(values),
                           rtol=1e-12, atol=1e-9)

    def test_much_faster_than_naive_chain(self, rng, table1):
        values = rng.standard_normal(2048)
        naive = fetch_add_prefix_sum(values, table1)
        blocked = blocked_prefix_sum(values, table1, block=256)
        assert blocked.cycles < naive.cycles / 3

    def test_block_boundary_cases(self, table1):
        for count in (1, 255, 256, 257, 512):
            values = np.arange(count, dtype=np.float64)
            scan = blocked_prefix_sum(values, table1, block=256)
            assert np.allclose(scan.exclusive,
                               exclusive_reference(values)), count

    def test_invalid_block(self, table1):
        with pytest.raises(ValueError):
            blocked_prefix_sum([1.0], table1, block=0)

    @settings(max_examples=10, deadline=None)
    @given(st.lists(st.floats(-50, 50, allow_nan=False), min_size=1,
                    max_size=300),
           st.sampled_from([16, 64, 256]))
    def test_property_any_block_size(self, values, block):
        scan = blocked_prefix_sum(values, MachineConfig.table1(),
                                  block=block)
        assert np.allclose(scan.exclusive, exclusive_reference(values),
                           rtol=1e-9, atol=1e-9)

"""Tests for the Chrome-trace and metrics.json exporters."""

import json

import pytest

from repro.api import Simulation
from repro.obs import (
    METRICS_SCHEMA,
    observe,
    validate_chrome_trace,
    validate_metrics,
    write_chrome_trace,
    write_metrics,
)
from repro.obs.validate import main as validate_main


@pytest.fixture
def traced_run(rng):
    indices = rng.integers(0, 64, size=300)
    sim = Simulation(sample_every=32, trace=True)
    return sim.run("scatter_add", indices, 1.0, num_targets=64)


class TestChromeTrace:
    def test_written_file_is_loadable_schema(self, traced_run, tmp_path):
        path = tmp_path / "out.trace.json"
        traced_run.write_trace(path)
        payload = json.loads(path.read_text())
        events = payload["traceEvents"]
        assert events, "trace must not be empty"
        for event in events:
            assert event["ph"] in ("X", "i", "C", "M")
            assert isinstance(event["ts"], (int, float))
            assert "pid" in event
        # At least one phase span, one instant, one counter sample.
        phases = {event["ph"] for event in events}
        assert {"X", "i", "C", "M"} <= phases

    def test_process_and_thread_metadata(self, traced_run, tmp_path):
        path = tmp_path / "out.trace.json"
        payload = write_chrome_trace(path, traced_run.observation)
        meta = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        names = {e["args"]["name"] for e in meta
                 if e["name"] == "thread_name"}
        assert any("sau" in name for name in names)
        assert any(e["name"] == "process_name" for e in meta)

    def test_validator_accepts_bare_event_array(self):
        validate_chrome_trace([{"ph": "i", "ts": 0, "pid": 0, "s": "t"}])

    def test_validator_rejects_missing_fields(self):
        with pytest.raises(ValueError):
            validate_chrome_trace([{"ph": "i", "ts": 0}])  # no pid
        with pytest.raises(ValueError):
            validate_chrome_trace([{"ph": "Z", "ts": 0, "pid": 0}])
        with pytest.raises(ValueError):
            validate_chrome_trace({"events": []})  # wrong key
        with pytest.raises(ValueError):
            validate_chrome_trace(
                [{"ph": "X", "ts": 0, "pid": 0}])  # X without dur

    def test_untraced_run_refuses_export(self, tmp_path):
        run = Simulation().run("scatter_add", [1, 2], 1.0, num_targets=4)
        with pytest.raises(ValueError):
            run.write_trace(tmp_path / "nope.json")


class TestFlowEventSchema:
    def _flow(self, ph, rid, ts=0, pid=0):
        return {"ph": ph, "name": "request", "cat": "request", "id": rid,
                "ts": ts, "pid": pid, "tid": 1}

    def test_accepts_matched_flow_chain(self):
        validate_chrome_trace([
            self._flow("s", 1, ts=0),
            self._flow("t", 1, ts=5),
            self._flow("f", 1, ts=9),
        ])

    def test_rejects_flow_event_without_id(self):
        with pytest.raises(ValueError, match="lacks an 'id'"):
            validate_chrome_trace(
                [{"ph": "s", "ts": 0, "pid": 0, "tid": 1}])

    def test_rejects_finish_without_start(self):
        with pytest.raises(ValueError, match="without a matching start"):
            validate_chrome_trace([self._flow("f", 7)])

    def test_rejects_step_without_start(self):
        with pytest.raises(ValueError, match="without a matching start"):
            validate_chrome_trace(
                [self._flow("s", 1), self._flow("f", 1),
                 self._flow("t", 2)])

    def test_rejects_start_without_finish(self):
        with pytest.raises(ValueError, match="without a matching finish"):
            validate_chrome_trace([self._flow("s", 3)])

    def test_rejects_non_monotone_request_spans(self):
        span = {"ph": "X", "name": "fu", "cat": "request", "dur": 1,
                "pid": 0, "tid": 1, "args": {"rid": 4}}
        with pytest.raises(ValueError, match="back in time"):
            validate_chrome_trace([
                dict(span, ts=10), dict(span, ts=3),
            ])

    def test_non_request_spans_need_not_be_ordered(self):
        validate_chrome_trace([
            {"ph": "X", "name": "a", "cat": "phase", "dur": 1,
             "pid": 0, "tid": 0, "ts": 10},
            {"ph": "X", "name": "b", "cat": "phase", "dur": 1,
             "pid": 0, "tid": 0, "ts": 3},
        ])

    def test_request_traced_run_exports_valid_flows(self, rng, tmp_path):
        indices = rng.integers(0, 64, size=300)
        run = Simulation(trace_requests=5).run(
            "scatter_add", indices, 1.0, num_targets=64)
        payload = run.write_trace(tmp_path / "req.trace.json")
        events = validate_chrome_trace(payload)
        phases = {event["ph"] for event in events}
        assert {"s", "t", "f"} <= phases
        spans = [e for e in events
                 if e["ph"] == "X" and e.get("cat") == "request"]
        assert spans, "request spans expected"


class TestMetricsJson:
    def test_schema_and_content(self, traced_run, tmp_path):
        path = tmp_path / "metrics.json"
        payload = traced_run.write_metrics(path)
        loaded = json.loads(path.read_text())
        assert loaded["schema"] == METRICS_SCHEMA
        scope = loaded["scopes"][0]
        assert scope["cycles"] == traced_run.cycles
        assert scope["counters"]["memsys.refs"] == 300
        assert len(scope["bottlenecks"]) >= 4
        ranked = [row["busy_fraction"] for row in scope["bottlenecks"]]
        assert ranked == sorted(ranked, reverse=True)
        assert all(0.0 <= fraction <= 1.0 for fraction in ranked)
        assert scope["timelines"], "sampled run must export timelines"
        assert scope["histograms"], "store occupancy histogram expected"
        validate_metrics(loaded)

    def test_untraced_run_still_exports_metrics(self, tmp_path, rng):
        run = Simulation().run("scatter_add",
                               rng.integers(0, 32, size=100), 1.0,
                               num_targets=32)
        payload = run.write_metrics(tmp_path / "metrics.json")
        validate_metrics(payload)
        assert payload["scopes"][0]["cycles"] == run.cycles

    def test_validator_rejects_bad_payloads(self):
        with pytest.raises(ValueError):
            validate_metrics({"schema": "other/1", "scopes": []})
        with pytest.raises(ValueError):
            validate_metrics({"schema": METRICS_SCHEMA})  # no scopes
        with pytest.raises(ValueError):
            validate_metrics({
                "schema": METRICS_SCHEMA,
                "scopes": [{"counters": {"x": "NaN-ish"}}],
            })
        with pytest.raises(ValueError):
            validate_metrics({
                "schema": METRICS_SCHEMA,
                "scopes": [{
                    "counters": {},
                    "histograms": {"h": {"edges": [1], "counts": [1]}},
                }],
            })


class TestNetworkInvariant:
    """validate_metrics enforces network flow conservation per scope."""

    def _payload(self, injected, delivered, combined):
        return {
            "schema": METRICS_SCHEMA,
            "scopes": [{"counters": {
                "sim.network.injected": injected,
                "sim.network.delivered": delivered,
                "sim.network.combined_in_flight": combined,
            }}],
        }

    def test_conserved_counters_pass(self):
        validate_metrics(self._payload(141, 127, 14))

    def test_violated_conservation_fails(self):
        with pytest.raises(ValueError, match="flow conservation"):
            validate_metrics(self._payload(141, 127, 13))

    def test_scopes_without_network_counters_are_exempt(self):
        validate_metrics({"schema": METRICS_SCHEMA,
                          "scopes": [{"counters": {"sim.cycles": 5}}]})

    def test_real_multinode_run_satisfies_the_invariant(self, rng,
                                                        tmp_path):
        from repro.config import MachineConfig, NetworkConfig

        config = MachineConfig.table1().with_changes(
            network=NetworkConfig(nodes=4, topology="tree", tree_radix=2,
                                  combine_site="both"))
        with observe() as observation:
            Simulation(config).run("scatter_add",
                                   rng.integers(0, 64, size=200), 1.0,
                                   num_targets=64)
        payload = write_metrics(tmp_path / "metrics.json", observation)
        validate_metrics(payload)
        counters = next(
            scope["counters"] for scope in payload["scopes"]
            if "sim.network.injected" in scope["counters"])
        assert counters["sim.network.injected"] == (
            counters["sim.network.delivered"]
            + counters["sim.network.combined_in_flight"])


class TestValidatorCli:
    def test_ok_files(self, traced_run, tmp_path, capsys):
        trace = tmp_path / "out.trace.json"
        metrics = tmp_path / "metrics.json"
        traced_run.write_trace(trace)
        traced_run.write_metrics(metrics)
        assert validate_main([str(trace), str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "(trace)" in out and "(metrics)" in out

    def test_invalid_file_fails(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"traceEvents": [{"ph": "i"}]}))
        assert validate_main([str(bad)]) != 0


class TestAmbientObservation:
    def test_observe_collects_scopes_from_deep_construction(self, rng):
        from repro.config import MachineConfig
        from repro.workloads.histogram import HistogramWorkload

        workload = HistogramWorkload(length=200, index_range=64, seed=1)
        with observe(sample_every=64, trace=True) as observation:
            workload.run_hardware(MachineConfig.table1())
        assert observation.scopes, "StreamProcessor should auto-attach"
        scope = observation.scopes[0]
        assert scope.cycles > 0
        assert scope.timelines

    def test_no_ambient_session_outside_block(self):
        from repro.obs import session

        with observe(trace=True):
            assert session.active() is not None
        assert session.active() is None

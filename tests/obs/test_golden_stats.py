"""Golden guarantee: the typed-metric layer never perturbs ``Stats``.

The refactor from raw ``stats.add`` calls to registry counter handles must
leave ``Stats.as_dict()`` bit-identical: same key set, same values, no new
keys from gauges/histograms/samplers.  Pinned on the Figure 8 histogram
configuration (Table 1 machine, uniform random indices).
"""

import numpy as np

from repro.api import Simulation
from repro.config import MachineConfig


def _figure8_run(**sim_kwargs):
    rng = np.random.default_rng(8)
    indices = rng.integers(0, 512, size=1500)
    sim = Simulation(MachineConfig.table1(), **sim_kwargs)
    return sim.run("scatter_add", indices, 1.0, num_targets=512)


class TestGoldenStats:
    def test_as_dict_deterministic_across_runs(self):
        first = _figure8_run().stats.as_dict()
        second = _figure8_run().stats.as_dict()
        assert first == second

    def test_observation_does_not_change_as_dict(self):
        # Sampling and tracing add no model counters and change no values
        # (``trace.dropped`` appears only if events are actually dropped).
        # Only the ``engine.*`` / ``sim.columnar.*`` scheduler
        # bookkeeping may differ: the sampler is one extra component, so
        # it legitimately runs ticks, and live probes push the columnar
        # engine onto its exact scalar fallback path.
        def model_counters(values):
            return {name: value for name, value in values.items()
                    if not name.startswith(("engine.", "sim.columnar"))}

        plain = _figure8_run().stats.as_dict()
        observed = _figure8_run(sample_every=64,
                                trace=True).stats.as_dict()
        assert model_counters(observed) == model_counters(plain)

    @staticmethod
    def _comparable(stats):
        # Model counters are always bit-identical.  The engine's
        # self-describing bookkeeping (``engine.*``, ``sim.columnar.*``)
        # is too under legacy/event, but the columnar engine delivers
        # traced acknowledgements individually instead of batching them,
        # so its own work counters legitimately shift with trace density.
        # The fastforward engine runs on the same columnar machinery
        # (tracing makes it decline the collapse), so the same applies.
        from repro.sim.engine import DEFAULT_SCHEDULER

        values = stats.as_dict()
        if DEFAULT_SCHEDULER not in ("columnar", "fastforward"):
            return values
        return {name: value for name, value in values.items()
                if not name.startswith(("engine.", "sim.columnar"))}

    def test_request_tracing_is_bit_identical(self):
        # The tentpole guarantee: request tracing must be a pure observer.
        # Cycle counts, results and the full Stats.as_dict() (engine
        # scheduler counters included -- the tracer registers no
        # components) are bit-identical with tracing on vs. off.
        plain = _figure8_run()
        traced = _figure8_run(trace_requests=7)
        assert traced.cycles == plain.cycles
        assert self._comparable(traced.stats) == self._comparable(plain.stats)
        assert np.array_equal(traced.result, plain.result)

    def test_request_tracing_sampling_rate_is_neutral(self):
        # Any sampling period gives the same simulation.
        dense = _figure8_run(trace_requests=1)
        sparse = _figure8_run(trace_requests=100)
        assert dense.cycles == sparse.cycles
        assert self._comparable(dense.stats) == self._comparable(sparse.stats)

    def test_expected_counter_families_present(self):
        values = _figure8_run().stats.as_dict()
        expected = [
            "memsys.refs",
            "memsys.stream_ops",
            "agu0.refs",
            "memsys.router.hol_blocks",
            "memsys.bank0.hits",
            "memsys.bank0.misses",
            "memsys.sau0_0.sums",
            "memsys.sau0_0.atomics",
            "fu.sums",
            "memsys.dram.reads",
            "memsys.dram.read_words",
            "memsys.dram.busy_cycles",
        ]
        for key in expected:
            assert key in values, "missing golden counter %r" % key

    def test_registry_counters_equal_stats_values(self):
        stats = _figure8_run().stats
        values = stats.as_dict()
        registry = stats.registry
        for name in registry.counter_names():
            handle = registry.counter(name)
            assert handle.value == values.get(name, 0), name

    def test_cross_invariants(self):
        run = _figure8_run()
        stats = run.stats
        n = 1500
        # Every update issues exactly one memory reference...
        assert stats.get("memsys.refs") == n
        # ...is accepted as exactly one atomic...
        atomics = sum(value for name, value in stats.as_dict().items()
                      if name.endswith(".atomics"))
        assert atomics == n
        # ...and completes exactly one sum; fu.sums aggregates all units.
        unit_sums = sum(value for name, value in stats.as_dict().items()
                        if name.endswith(".sums") and "sau" in name)
        assert unit_sums == n
        assert stats.get("fu.sums") == n
        assert run.mem_refs == n

    def test_store_occupancy_histogram_totals_atomics(self):
        stats = _figure8_run().stats
        snapshot = stats.registry.snapshot()
        histograms = {name: data
                      for name, data in snapshot["histograms"].items()
                      if name.endswith(".store.occupancy")}
        assert histograms, "per-unit occupancy histograms expected"
        total = sum(data["total"] for data in histograms.values())
        assert total == 1500  # one observation per accepted atomic
        for data in histograms.values():
            assert data["edges"] == [1, 2, 4, 8]  # Table 1: 8 entries
            assert len(data["counts"]) == len(data["edges"]) + 1

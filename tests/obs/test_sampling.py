"""Tests for cycle-window timeline sampling."""

import numpy as np
import pytest

from repro.api import Simulation
from repro.obs.sampling import TimelineSampler, gather_probes
from repro.sim.engine import Component, Simulator


class Clock(Component):
    """Keeps the simulation alive for a fixed number of cycles."""

    def __init__(self, until):
        super().__init__("clock")
        self.until = until
        self.level = 0

    def tick(self, now):
        self.level = now

    def next_wake(self, now):
        return now + 1 if now < self.until else None

    @property
    def busy(self):
        return self.level < self.until

    def obs_probes(self):
        return (("level", lambda now: self.level),)


class TestSamplerBoundaries:
    def test_samples_exactly_on_window_boundaries(self):
        sim = Simulator()
        clock = sim.register(Clock(100))
        sampler = TimelineSampler(16, gather_probes([clock]))
        sim.register(sampler)
        sim.run()
        timeline = sampler.timelines[0]
        assert timeline.name == "clock.level"
        assert timeline.cycles == [0, 16, 32, 48, 64, 80, 96]

    def test_window_of_one_samples_every_cycle(self):
        sim = Simulator()
        clock = sim.register(Clock(5))
        sampler = TimelineSampler(1, gather_probes([clock]))
        sim.register(sampler)
        sim.run()
        assert sampler.timelines[0].cycles == [0, 1, 2, 3, 4, 5]

    def test_no_duplicate_sample_across_two_runs(self):
        # A second run() starting on a boundary must not re-sample it.
        sim = Simulator()
        clock = sim.register(Clock(32))
        sampler = TimelineSampler(16, gather_probes([clock]))
        sim.register(sampler)
        sim.run()
        first = list(sampler.timelines[0].cycles)
        sim.run()  # quiesced: nothing new
        assert sampler.timelines[0].cycles == first

    def test_rejects_non_positive_window(self):
        with pytest.raises(ValueError):
            TimelineSampler(0, [])


class TestSamplerNeutrality:
    def test_sampling_does_not_change_cycles_or_result(self, rng):
        indices = rng.integers(0, 128, size=600)
        plain = Simulation().run("scatter_add", indices, 1.0,
                                 num_targets=128)
        sampled = Simulation(sample_every=8).run("scatter_add", indices, 1.0,
                                                 num_targets=128)
        assert sampled.cycles == plain.cycles
        assert np.array_equal(sampled.result, plain.result)

    def test_disabled_means_no_sampler_component(self):
        run = Simulation().run("scatter_add", [1, 2, 2], 1.0, num_targets=4)
        assert run.observation is None

    def test_enabled_produces_component_timelines(self, rng):
        indices = rng.integers(0, 64, size=400)
        run = Simulation(sample_every=32).run("scatter_add", indices, 1.0,
                                              num_targets=64)
        scope = run.observation.scopes[0]
        names = {timeline.name for timeline in scope.timelines}
        # Probes from every modeled layer: AGU, router, SAUs, banks, DRAM.
        assert any(name.startswith("agu0.") for name in names)
        assert any(".bank0." in name for name in names)
        assert any(".sau0_0." in name for name in names)
        assert any(".dram." in name for name in names)
        for timeline in scope.timelines:
            assert len(timeline.cycles) == len(timeline.values)
            # Every sample lands on a window boundary, except the final
            # flush sample capturing the run's last partial window.
            assert all(cycle % 32 == 0 for cycle in timeline.cycles[:-1])
            assert timeline.cycles == sorted(set(timeline.cycles))

    def test_final_partial_window_is_flushed(self, rng):
        indices = rng.integers(0, 64, size=400)
        run = Simulation(sample_every=10_000).run(
            "scatter_add", indices, 1.0, num_targets=64)
        scope = run.observation.scopes[0]
        # The run is far shorter than one window; without the flush the
        # only sample would be the cycle-0 boundary.
        # The flush lands at the engine's quiescent cycle (scope.cycles
        # additionally counts analytic launch overheads).
        for timeline in scope.timelines:
            assert len(timeline.cycles) == 2
            assert timeline.cycles[0] == 0
            assert 0 < timeline.cycles[1] <= scope.cycles


class TestSamplerFlush:
    def test_flush_records_final_partial_window(self):
        sim = Simulator()
        clock = sim.register(Clock(100))
        sampler = TimelineSampler(16, gather_probes([clock]))
        sim.register(sampler)
        end = sim.run()
        sampler.flush(end)
        timeline = sampler.timelines[0]
        assert timeline.cycles == [0, 16, 32, 48, 64, 80, 96, end]
        assert timeline.values[-1] == clock.level

    def test_flush_on_boundary_is_noop(self):
        sim = Simulator()
        clock = sim.register(Clock(32))
        sampler = TimelineSampler(16, gather_probes([clock]))
        sim.register(sampler)
        sim.run()
        before = list(sampler.timelines[0].cycles)
        sampler.flush(before[-1])
        assert sampler.timelines[0].cycles == before

    def test_flush_is_idempotent(self):
        sim = Simulator()
        clock = sim.register(Clock(20))
        sampler = TimelineSampler(16, gather_probes([clock]))
        sim.register(sampler)
        end = sim.run()
        sampler.flush(end)
        sampler.flush(end)
        assert sampler.timelines[0].cycles == [0, 16, end]


class TestProbeGathering:
    def test_default_component_has_no_probes(self):
        assert Component("x").obs_probes() == ()

    def test_gather_qualifies_names(self):
        clock = Clock(1)
        probes = gather_probes([clock, Component("plain")])
        assert [name for name, __ in probes] == ["clock.level"]

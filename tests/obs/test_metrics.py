"""Tests for the typed metric registry (counters, gauges, histograms)."""

import pytest

from repro.obs.metrics import Histogram, MetricRegistry
from repro.sim.stats import Stats


class TestCounter:
    def test_writes_through_to_stats(self):
        stats = Stats()
        counter = stats.registry.counter("bank0.hits")
        counter.inc()
        counter.inc(3)
        assert stats.get("bank0.hits") == 4.0
        assert counter.value == 4.0

    def test_shares_value_with_stats_add(self):
        # Mixed use (legacy stats.add + typed handle) must agree: both
        # write the same underlying cell.
        stats = Stats()
        counter = stats.registry.counter("dram.reads")
        stats.add("dram.reads", 2)
        counter.inc()
        assert stats.get("dram.reads") == 3.0

    def test_memoized_per_name(self):
        stats = Stats()
        assert stats.registry.counter("a") is stats.registry.counter("a")
        assert stats.registry.counter("a") is not stats.registry.counter("b")

    def test_zero_increment_materialises_key(self):
        # stats.add(name, 0) creates the key; the handle must too (the
        # DRAM scheduler counts "0 reorders" this way).
        stats = Stats()
        stats.registry.counter("dram.sched_reorders").inc(0)
        assert "dram.sched_reorders" in stats.as_dict()


class TestGauge:
    def test_set_and_maximum(self):
        stats = Stats()
        gauge = stats.registry.gauge("store.peak")
        gauge.set(3)
        gauge.maximum(2)
        assert gauge.value == 3
        gauge.maximum(7)
        assert gauge.value == 7

    def test_does_not_touch_stats_bag(self):
        stats = Stats()
        stats.registry.gauge("store.peak").set(9)
        assert "store.peak" not in stats.as_dict()


class TestHistogram:
    def test_bucket_edges_less_or_equal(self):
        hist = Histogram("h", [1, 2, 4, 8])
        for value in (1, 2, 2, 3, 8):
            hist.observe(value)
        # value <= edge lands in that bucket: 1 -> [<=1]; 2,2 -> [<=2];
        # 3 -> [<=4]; 8 -> [<=8]; nothing overflows.
        assert hist.counts == [1, 2, 1, 1, 0]

    def test_overflow_bucket(self):
        hist = Histogram("h", [1, 2])
        hist.observe(3)
        hist.observe(100)
        assert hist.counts == [0, 0, 2]
        assert len(hist.counts) == len(hist.edges) + 1

    def test_below_first_edge(self):
        hist = Histogram("h", [10, 20])
        hist.observe(0)
        hist.observe(-5)
        assert hist.counts[0] == 2

    def test_total_sum_mean(self):
        hist = Histogram("h", [4])
        hist.observe(2, n=3)
        hist.observe(10)
        assert hist.total == 4
        assert hist.sum == 16
        assert hist.mean == 4.0

    def test_edges_must_increase(self):
        with pytest.raises(ValueError):
            Histogram("h", [1, 1, 2])
        with pytest.raises(ValueError):
            Histogram("h", [])

    def test_registry_requires_edges_on_first_use(self):
        registry = MetricRegistry(Stats())
        with pytest.raises(ValueError):
            registry.histogram("h")

    def test_registry_rejects_mismatched_edges(self):
        registry = MetricRegistry(Stats())
        registry.histogram("h", [1, 2])
        assert registry.histogram("h").edges == (1, 2)
        assert registry.histogram("h", [1, 2]) is registry.histogram("h")
        with pytest.raises(ValueError):
            registry.histogram("h", [1, 2, 4])

    def test_not_in_stats_bag(self):
        stats = Stats()
        stats.registry.histogram("lat", [1, 2]).observe(1)
        assert "lat" not in stats.as_dict()


class TestHistogramPercentile:
    def test_empty_histogram_is_zero(self):
        assert Histogram("h", [1, 2]).percentile(50) == 0.0

    def test_rejects_out_of_range_q(self):
        hist = Histogram("h", [1, 2])
        with pytest.raises(ValueError):
            hist.percentile(-1)
        with pytest.raises(ValueError):
            hist.percentile(101)

    def test_interpolates_within_first_bucket(self):
        # 10 observations in the [0, 10] bucket: p50 is the bucket
        # midpoint under linear interpolation.
        hist = Histogram("h", [10, 20])
        hist.observe(5, n=10)
        assert hist.percentile(50) == 5.0
        assert hist.percentile(100) == 10.0

    def test_interpolates_between_edges(self):
        hist = Histogram("h", [10, 20])
        hist.observe(5, n=5)   # bucket <= 10
        hist.observe(15, n=5)  # bucket <= 20
        # p90: target 9 of 10 -> 4 past the 5 in bucket 0; interpolate
        # 4/5 of the way through [10, 20].
        assert hist.percentile(90) == pytest.approx(18.0)

    def test_overflow_bucket_clamps_to_last_edge(self):
        hist = Histogram("h", [1, 2])
        hist.observe(100, n=4)
        assert hist.percentile(99) == 2.0

    def test_as_dict_includes_percentiles(self):
        hist = Histogram("h", [4, 8])
        hist.observe(2, n=8)
        data = hist.as_dict()
        for key in ("p50", "p90", "p99"):
            assert key in data
        assert data["p50"] <= data["p90"] <= data["p99"] <= 8

    def test_percentiles_monotone_on_spread_data(self):
        hist = Histogram("h", [1, 2, 4, 8, 16, 32])
        for value in (1, 1, 2, 3, 5, 9, 17, 30, 31, 100):
            hist.observe(value)
        p50, p90, p99 = (hist.percentile(q) for q in (50, 90, 99))
        assert p50 <= p90 <= p99
        assert p99 <= 32  # clamped to the last edge


class TestMerge:
    def test_registry_merge_via_stats_merge(self):
        a, b = Stats(), Stats()
        a.registry.counter("x").inc(1)
        b.registry.counter("x").inc(2)
        a.registry.gauge("g").set(3)
        b.registry.gauge("g").set(5)
        a.registry.histogram("h", [2]).observe(1)
        b.registry.histogram("h", [2]).observe(4)
        a.merge(b)
        assert a.get("x") == 3.0
        assert a.registry.gauge("g").value == 5  # gauges keep the max
        assert a.registry.histogram("h").counts == [1, 1]

    def test_merge_plain_stats_without_registry(self):
        # Merging a Stats that never touched its registry must not
        # instantiate one.
        a, b = Stats(), Stats()
        b.add("y", 2)
        a.merge(b)
        assert a.get("y") == 2.0
        assert a._registry is None

    def test_snapshot_reads_live_stats(self):
        stats = Stats()
        counter = stats.registry.counter("c")
        counter.inc(2)
        stats.add("c", 1)
        snap = stats.registry.snapshot()
        assert snap["counters"]["c"] == 3.0

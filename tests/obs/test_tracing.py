"""Tests for sampled per-request span tracing and latency attribution.

The central property: legs *partition* each traced request's lifetime, so
the per-stage attribution sums reconcile with measured end-to-end latency
exactly -- not approximately -- for every configuration (cached, uniform,
multi-node, cache-combining).
"""

import math

import numpy as np
import pytest

from repro.api import Simulation
from repro.config import MachineConfig
from repro.harness.report import latency_breakdown, render_latency_breakdown
from repro.multinode.system import MultiNodeSystem
from repro.obs.export import chrome_trace_events, validate_chrome_trace
from repro.obs.session import Observation
from repro.obs.tracing import STAGE_KINDS, RequestTrace, RequestTracer
from repro.sim.stats import Stats


def _traced_run(rng, *, every=7, updates=1500, targets=512, op="scatter_add",
                **sim_kwargs):
    indices = rng.integers(0, targets, size=updates)
    sim = Simulation(trace_requests=every, **sim_kwargs)
    return sim.run(op, indices, 1.0, num_targets=targets)


def _tracer_of(run):
    return run.observation.scopes[0].request_tracer


class TestSampling:
    def test_one_in_n_by_issue_order(self, rng):
        run = _traced_run(rng, every=7, updates=1500)
        tracer = _tracer_of(run)
        assert tracer.sampled == math.ceil(1500 / 7)
        assert tracer.completed == tracer.sampled  # all requests retired
        assert len(tracer.traces) == tracer.sampled

    def test_every_one_traces_every_request(self, rng):
        run = _traced_run(rng, every=1, updates=200, targets=64)
        assert _tracer_of(run).completed == 200

    def test_rejects_non_positive_period(self):
        with pytest.raises(ValueError):
            RequestTracer(0, Stats().registry)

    def test_max_traces_drops_overflow_but_keeps_histograms(self, rng):
        registry = Stats().registry
        tracer = RequestTracer(1, registry, max_traces=3)
        for rid in range(5):
            trace = tracer.maybe_trace("scatter_add", rid, now=0)
            trace.leg("agu0", "reply", 4)
            trace.finish(4)
        assert len(tracer.traces) == 3
        assert tracer.dropped == 2
        assert tracer.completed == 5  # histograms still see every trace


class TestLegPartition:
    def test_spans_tile_lifetime_exactly(self, rng):
        tracer = _tracer_of(_traced_run(rng))
        assert tracer.traces
        for trace in tracer.traces:
            assert trace.spans
            assert trace.spans[0].start == trace.issue_cycle
            assert trace.spans[-1].end == trace.done_cycle
            for earlier, later in zip(trace.spans, trace.spans[1:]):
                assert earlier.end == later.start  # contiguous, gap-free
            total = sum(span.duration for span in trace.spans)
            assert total == trace.latency

    def test_every_stage_is_classified(self, rng):
        tracer = _tracer_of(_traced_run(rng))
        for trace in tracer.traces:
            for span in trace.spans:
                assert span.stage in STAGE_KINDS, span.stage

    def test_cursor_never_goes_backwards(self):
        trace = RequestTrace(0, "scatter_add", 0, issue_cycle=5)
        trace.leg("a", "router.queue", 7)
        trace.leg("b", "fu", 7)  # zero-length leg is legal
        assert [span.duration for span in trace.spans] == [2, 0]


class TestBreakdownReconciliation:
    def test_stage_sums_reconcile_with_end_to_end(self, rng):
        # The acceptance criterion: per-stage cycle sums equal the summed
        # end-to-end latency exactly, with nothing unattributed.
        breakdown = _tracer_of(_traced_run(rng)).breakdown()
        attributed = sum(row["cycles"] for row in breakdown["stages"])
        assert attributed == breakdown["end_to_end"]["cycles"]
        assert breakdown["unattributed_cycles"] == 0.0
        assert (breakdown["queue_cycles"] + breakdown["service_cycles"]
                == attributed)

    def test_rows_have_distribution_fields(self, rng):
        breakdown = _tracer_of(_traced_run(rng)).breakdown()
        assert breakdown["requests"] > 0
        for row in breakdown["stages"]:
            assert row["kind"] in ("queue", "service")
            assert row["count"] > 0
            assert row["p50"] <= row["p90"] <= row["p99"]
            assert 0.0 <= row["share"] <= 1.0
        shares = sum(row["share"] for row in breakdown["stages"])
        assert shares == pytest.approx(1.0)

    def test_reconciles_on_uniform_memory_config(self, rng):
        config = MachineConfig.uniform(latency=64, interval=2)
        run = Simulation(config, trace_requests=5).run(
            "scatter_add", rng.integers(0, 256, size=600), 1.0,
            num_targets=256)
        breakdown = _tracer_of(run).breakdown()
        assert breakdown["requests"] > 0
        assert breakdown["unattributed_cycles"] == 0.0
        stages = {row["stage"] for row in breakdown["stages"]}
        assert "dram.burst" in stages  # uniform memory shares the taxonomy

    def test_reconciles_for_fetch_add_replies(self, rng):
        run = _traced_run(rng, every=3, updates=300, targets=64,
                          op="fetch_add")
        breakdown = _tracer_of(run).breakdown()
        assert breakdown["requests"] == 100
        assert breakdown["unattributed_cycles"] == 0.0


class TestCombiningFanout:
    def test_fanout_accounts_for_every_update(self, rng):
        # Chains are counted for *all* requests (not only sampled ones):
        # the fanout histogram's weighted sum equals the update count.
        run = _traced_run(rng, updates=1500)
        fanout = _tracer_of(run).breakdown()["combine_fanout"]
        assert fanout["sum"] == 1500
        assert fanout["total"] <= 1500  # one entry per retired chain

    def test_hot_address_produces_large_fanout(self):
        run = Simulation(trace_requests=10).run(
            "scatter_add", [5] * 400, 1.0, num_targets=8)
        fanout = _tracer_of(run).breakdown()["combine_fanout"]
        assert fanout["sum"] == 400
        # All updates target one address: far fewer chains than updates.
        assert fanout["total"] < 40


class TestLatencyBreakdownApi:
    def test_scatter_run_latency_breakdown(self, rng):
        run = _traced_run(rng)
        breakdown = run.latency_breakdown()
        assert breakdown == latency_breakdown(_tracer_of(run))

    def test_untraced_run_raises(self, rng):
        run = Simulation().run("scatter_add", [1, 2], 1.0, num_targets=4)
        with pytest.raises(ValueError, match="trace_requests"):
            run.latency_breakdown()

    def test_render_produces_aligned_table(self, rng):
        text = render_latency_breakdown(_traced_run(rng).latency_breakdown())
        lines = text.splitlines()
        assert lines[0].split()[:2] == ["stage", "kind"]
        assert "requests traced" in lines[-1]
        assert "unattributed 0" in lines[-1]

    def test_render_empty_breakdown(self):
        tracer = RequestTracer(4, Stats().registry)
        assert "no completed" in render_latency_breakdown(tracer.breakdown())

    def test_registry_histograms_exported_per_stage(self, rng):
        run = _traced_run(rng)
        snapshot = run.stats.registry.snapshot()["histograms"]
        assert "reqtrace.e2e" in snapshot
        stage_names = [name for name in snapshot
                       if name.startswith("reqtrace.stage.")]
        assert len(stage_names) >= 5
        assert snapshot["reqtrace.e2e"]["p99"] >= snapshot[
            "reqtrace.e2e"]["p50"]


class TestFlowExport:
    def test_flow_events_link_spans_across_three_component_tracks(self, rng):
        # The acceptance criterion: the exported Chrome trace passes the
        # extended validator and links at least one sampled request's
        # spans across >= 3 component tracks via flow events.
        run = _traced_run(rng)
        events = chrome_trace_events(run.observation)
        validate_chrome_trace({"traceEvents": events})
        tids_by_rid = {}
        for event in events:
            if event["ph"] == "X" and event.get("cat") == "request":
                rid = event["args"]["rid"]
                tids_by_rid.setdefault(rid, set()).add(event["tid"])
        flow_ids = {event["id"] for event in events if event["ph"] == "s"}
        linked = [rid for rid, tids in tids_by_rid.items()
                  if len(tids) >= 3 and rid in flow_ids]
        assert linked, "no request linked across >= 3 component tracks"

    def test_flow_chains_are_well_formed(self, rng):
        run = _traced_run(rng)
        events = chrome_trace_events(run.observation)
        starts = [e for e in events if e["ph"] == "s"]
        finishes = [e for e in events if e["ph"] == "f"]
        assert len(starts) == len(finishes) == _tracer_of(run).completed
        assert all(e.get("bp") == "e" for e in finishes)


class TestMultiNodeTracing:
    def _run(self, rng, **config_kwargs):
        config = MachineConfig.multinode(4, network_bw_words=2,
                                         **config_kwargs)
        observation = Observation(trace_requests=5)
        system = MultiNodeSystem(config, address_space=4096, obs=observation)
        indices = rng.integers(0, 4096, size=800)
        run = system.scatter_add(indices, 1.0, num_targets=4096)
        reference = np.zeros(4096)
        np.add.at(reference, indices, 1.0)
        assert np.array_equal(run.result, reference)
        return observation.scopes[0].request_tracer

    def test_network_stages_appear_and_reconcile(self, rng):
        tracer = self._run(rng)
        breakdown = tracer.breakdown()
        assert breakdown["unattributed_cycles"] == 0.0
        stages = {row["stage"] for row in breakdown["stages"]}
        assert {"nif.queue", "xbar.queue", "xbar.hop"} <= stages

    def test_cache_combining_reconciles(self, rng):
        tracer = self._run(rng, cache_combining=True)
        breakdown = tracer.breakdown()
        assert breakdown["requests"] > 0
        assert breakdown["unattributed_cycles"] == 0.0

    def test_multinode_tracing_is_cycle_neutral(self, rng):
        config = MachineConfig.multinode(2, network_bw_words=2)
        indices = rng.integers(0, 2048, size=400)

        def cycles(obs):
            system = MultiNodeSystem(config, address_space=2048, obs=obs)
            return system.scatter_add(indices, 1.0, num_targets=2048).cycles

        assert cycles(None) == cycles(Observation(trace_requests=3))

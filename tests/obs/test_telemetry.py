"""Process-level telemetry: labeled families, exposition, validation.

The contract under test is the scrape loop the service depends on:
whatever a :class:`~repro.obs.telemetry.TelemetryRegistry` renders must
survive :func:`~repro.obs.telemetry.parse_prometheus_text` and
:func:`~repro.obs.telemetry.validate_prometheus_text` bit-for-bit --
including awkward label values -- and the validator must reject the
specific malformations a hand-rolled exporter is most likely to produce
(missing # TYPE, duplicate series, non-cumulative buckets).
"""

import math

import pytest

from repro.obs.metrics import Counter, Histogram
from repro.obs.telemetry import (
    CounterFamily,
    TelemetryRegistry,
    TimeHistogram,
    parse_prometheus_text,
    render_prometheus,
    validate_prometheus_text,
)


class TestFamilies:
    def test_counter_children_are_stock_counters(self):
        family = CounterFamily("repro_things_total", "things", ("kind",))
        child = family.labels(kind="widget")
        assert isinstance(child, Counter)
        child.inc()
        child.inc(4)
        assert family.labels(kind="widget").value == 5
        assert family.labels(kind="gadget").value == 0

    def test_labels_must_match_declaration(self):
        registry = TelemetryRegistry()
        family = registry.counter("repro_x_total", "x", labels=("a", "b"))
        with pytest.raises(ValueError):
            family.labels(a="1")
        with pytest.raises(ValueError):
            family.labels(a="1", b="2", c="3")
        with pytest.raises(ValueError):
            family.inc()  # labeled family has no default child

    def test_unlabeled_family_has_direct_handles(self):
        registry = TelemetryRegistry()
        counter = registry.counter("repro_plain_total", "plain")
        counter.inc(3)
        assert counter.value == 3
        gauge = registry.gauge("repro_level", "level")
        gauge.set(7)
        assert gauge.value == 7

    def test_invalid_names_rejected(self):
        registry = TelemetryRegistry()
        with pytest.raises(ValueError):
            registry.counter("0bad", "x")
        with pytest.raises(ValueError):
            registry.counter("repro_ok_total", "x", labels=("bad-label",))
        with pytest.raises(ValueError):
            registry.counter("repro_ok_total", "x", labels=("__reserved",))

    def test_reregistration_must_agree(self):
        registry = TelemetryRegistry()
        registry.counter("repro_a_total", "a", labels=("x",))
        again = registry.counter("repro_a_total", "a", labels=("x",))
        assert again is registry.counter("repro_a_total", "a",
                                         labels=("x",))
        with pytest.raises(ValueError):
            registry.gauge("repro_a_total", "a")
        with pytest.raises(ValueError):
            registry.counter("repro_a_total", "a", labels=("y",))

    def test_histogram_children_share_buckets(self):
        registry = TelemetryRegistry()
        family = registry.histogram("repro_lat_seconds", "lat",
                                    labels=("op",), buckets=(0.1, 1.0))
        fast = family.labels(op="fast")
        slow = family.labels(op="slow")
        assert isinstance(fast, Histogram)
        assert fast.edges == slow.edges == (0.1, 1.0)

    def test_time_histogram_observes_elapsed_monotonic(self):
        histogram = TimeHistogram("t", (0.5, 10.0))
        started = TimeHistogram.start()
        elapsed = histogram.observe_since(started)
        assert elapsed >= 0
        assert histogram.total == 1
        assert histogram.sum == pytest.approx(elapsed)


class TestExpositionRoundTrip:
    def _registry(self):
        registry = TelemetryRegistry()
        requests = registry.counter("repro_requests_total", "requests",
                                    labels=("endpoint", "status"))
        requests.labels(endpoint="jobs", status="200").inc(3)
        requests.labels(endpoint="stats", status="404").inc()
        registry.gauge("repro_uptime_seconds", "uptime").set(12.5)
        latency = registry.histogram("repro_latency_seconds", "latency",
                                     labels=("endpoint",),
                                     buckets=(0.01, 0.1, 1.0))
        child = latency.labels(endpoint="jobs")
        for value in (0.005, 0.05, 0.5, 5.0):
            child.observe(value)
        return registry

    def test_render_parses_and_validates(self):
        text = self._registry().render()
        families = validate_prometheus_text(text)
        assert set(families) == {"repro_requests_total",
                                 "repro_uptime_seconds",
                                 "repro_latency_seconds"}
        requests = families["repro_requests_total"]
        assert requests.kind == "counter"
        assert requests.value({"endpoint": "jobs", "status": "200"}) == 3
        assert families["repro_uptime_seconds"].value({}) == 12.5

    def test_histogram_series_are_cumulative_with_inf(self):
        text = self._registry().render()
        family = validate_prometheus_text(text)["repro_latency_seconds"]
        label = {"endpoint": "jobs"}
        assert family.value({**label, "le": "0.01"},
                            suffix="_bucket") == 1
        assert family.value({**label, "le": "0.1"}, suffix="_bucket") == 2
        assert family.value({**label, "le": "1"}, suffix="_bucket") == 3
        assert family.value({**label, "le": "+Inf"},
                            suffix="_bucket") == 4
        assert family.value(label, suffix="_count") == 4
        assert family.value(label, suffix="_sum") == pytest.approx(5.555)

    def test_label_values_escape_round_trip(self):
        registry = TelemetryRegistry()
        family = registry.counter("repro_paths_total", "paths",
                                  labels=("path",))
        nasty = 'a"b\\c\nd'
        family.labels(path=nasty).inc()
        families = validate_prometheus_text(registry.render())
        assert families["repro_paths_total"].value({"path": nasty}) == 1

    def test_collectors_run_at_render_time(self):
        registry = TelemetryRegistry()
        gauge = registry.gauge("repro_depth", "depth")
        source = {"depth": 0}
        registry.register_collector(lambda: gauge.set(source["depth"]))
        source["depth"] = 9
        families = parse_prometheus_text(registry.render())
        assert families["repro_depth"].value({}) == 9

    def test_snapshot_matches_rendered_values(self):
        registry = self._registry()
        snapshot = registry.snapshot()
        assert snapshot["repro_requests_total"]["type"] == "counter"
        assert snapshot["repro_requests_total"]["series"][
            "endpoint=jobs,status=200"] == 3


class TestValidator:
    def test_missing_type_header_rejected(self):
        with pytest.raises(ValueError, match="precedes its # TYPE"):
            validate_prometheus_text("repro_orphan_total 1\n")

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError, match="unknown metric type"):
            validate_prometheus_text("# TYPE repro_x summary\n")

    def test_duplicate_series_rejected(self):
        text = ("# TYPE repro_x_total counter\n"
                "repro_x_total{a=\"1\"} 1\n"
                "repro_x_total{a=\"1\"} 2\n")
        with pytest.raises(ValueError, match="duplicate series"):
            validate_prometheus_text(text)

    def test_negative_counter_rejected(self):
        text = "# TYPE repro_x_total counter\nrepro_x_total -1\n"
        with pytest.raises(ValueError, match="invalid value"):
            validate_prometheus_text(text)

    def test_non_cumulative_buckets_rejected(self):
        text = ("# TYPE repro_h histogram\n"
                "repro_h_bucket{le=\"0.1\"} 5\n"
                "repro_h_bucket{le=\"1\"} 3\n"
                "repro_h_bucket{le=\"+Inf\"} 5\n"
                "repro_h_sum 1.0\n"
                "repro_h_count 5\n")
        with pytest.raises(ValueError, match="not.*cumulative|cumulative"):
            validate_prometheus_text(text)

    def test_missing_inf_bucket_rejected(self):
        text = ("# TYPE repro_h histogram\n"
                "repro_h_bucket{le=\"0.1\"} 1\n"
                "repro_h_sum 0.05\n"
                "repro_h_count 1\n")
        with pytest.raises(ValueError, match=r"\+Inf"):
            validate_prometheus_text(text)

    def test_count_must_equal_inf_bucket(self):
        text = ("# TYPE repro_h histogram\n"
                "repro_h_bucket{le=\"+Inf\"} 4\n"
                "repro_h_sum 1.0\n"
                "repro_h_count 3\n")
        with pytest.raises(ValueError, match="_count"):
            validate_prometheus_text(text)

    def test_malformed_label_block_rejected(self):
        with pytest.raises(ValueError):
            parse_prometheus_text("# TYPE repro_x counter\n"
                                  "repro_x{a=unquoted} 1\n")

    def test_type_after_samples_rejected(self):
        text = ("# TYPE repro_x counter\n"
                "repro_x 1\n"
                "# TYPE repro_x counter\n")
        with pytest.raises(ValueError, match="after its samples"):
            parse_prometheus_text(text)

    def test_special_values_parse(self):
        text = ("# TYPE repro_g gauge\n"
                "repro_g{k=\"inf\"} +Inf\n"
                "repro_g{k=\"nan\"} NaN\n")
        family = parse_prometheus_text(text)["repro_g"]
        assert family.value({"k": "inf"}) == float("inf")
        assert math.isnan(family.value({"k": "nan"}))


class TestValidateFileDispatch:
    def test_prometheus_file_detected_and_validated(self, tmp_path):
        from repro.obs.validate import validate_file

        registry = TelemetryRegistry()
        registry.counter("repro_ok_total", "ok").inc()
        path = tmp_path / "metrics.prom"
        path.write_text(registry.render())
        assert validate_file(str(path)) == "prometheus"

    def test_bad_prometheus_file_fails(self, tmp_path):
        from repro.obs.validate import validate_file

        path = tmp_path / "bad.prom"
        path.write_text("repro_orphan_total 1\n")
        with pytest.raises(ValueError):
            validate_file(str(path))

"""Shared fixtures and helpers for the test suite."""

import numpy as np
import pytest

from repro.config import MachineConfig
from repro.memory.backing import MainMemory
from repro.memory.dram import UniformMemory
from repro.core.unit import ScatterAddUnit
from repro.sim.engine import Component, Simulator
from repro.sim.stats import Stats


@pytest.fixture
def table1():
    """The paper's base configuration."""
    return MachineConfig.table1()


@pytest.fixture
def uniform_config():
    """The sensitivity-study configuration (no cache, fixed memory)."""
    return MachineConfig.uniform()


@pytest.fixture
def tiny_cache_config():
    """A cached configuration with a very small cache, to force evictions."""
    return MachineConfig(cache_size_bytes=4096, cache_associativity=2)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


class Feeder(Component):
    """Test helper: drips requests into a FIFO respecting back-pressure."""

    def __init__(self, target, requests, per_cycle=4):
        super().__init__("feeder")
        self.target = target
        self.pending = list(reversed(requests))
        self.per_cycle = per_cycle

    def tick(self, now):
        for _ in range(self.per_cycle):
            if not self.pending or not self.target.can_push():
                return
            self.target.push(self.pending.pop())

    @property
    def busy(self):
        return bool(self.pending)


class Sink(Component):
    """Test helper: drains a FIFO into a list every cycle."""

    def __init__(self, sim, name="sink"):
        super().__init__(name)
        self.fifo = sim.fifo(name=name + ".in")
        self.received = []

    def tick(self, now):
        while len(self.fifo):
            self.received.append(self.fifo.pop())


class UnitHarness:
    """A scatter-add unit wired to a uniform memory, fed by a Feeder."""

    def __init__(self, config=None, chaining=True):
        self.config = config if config is not None else MachineConfig.uniform()
        self.sim = Simulator()
        self.stats = Stats()
        self.memory = MainMemory()
        self.endpoint = UniformMemory(self.sim, self.config, self.memory,
                                      self.stats)
        self.unit = ScatterAddUnit(self.sim, self.config, self.stats,
                                   self.endpoint.req_in, chaining=chaining)
        self.sim.register(self.unit)
        self.sink = Sink(self.sim)
        self.sim.register(self.sink)

    @property
    def reply_fifo(self):
        """FIFO to use as reply_to; delivered messages land in .responses."""
        return self.sink.fifo

    @property
    def responses(self):
        return self.sink.received

    def run(self, requests):
        """Feed requests through the unit and run to quiescence."""
        feeder = Feeder(self.unit.req_in, requests)
        self.sim.register(feeder)
        return self.sim.run()


@pytest.fixture
def unit_harness():
    return UnitHarness


@pytest.fixture
def feeder():
    return Feeder


@pytest.fixture
def sink_factory():
    return Sink

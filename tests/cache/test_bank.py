"""Tests for the cache bank: hits, misses, MSHRs, evictions, combining."""

import numpy as np
import pytest

from repro.cache.bank import CacheBank
from repro.config import MachineConfig
from repro.memory.backing import MainMemory
from repro.memory.dram import DRAMSystem
from repro.memory.request import (
    OP_READ,
    OP_SCATTER_ADD,
    OP_WRITE,
    MemoryRequest,
)
from repro.sim.engine import Simulator
from repro.sim.stats import Stats

from tests.conftest import Feeder, Sink


class BankHarness:
    """One cache bank over a DRAM system."""

    def __init__(self, config=None, sumback_sink=None):
        self.config = config or MachineConfig(
            cache_size_bytes=1024, cache_associativity=2, cache_banks=1,
        )
        self.sim = Simulator()
        self.stats = Stats()
        self.memory = MainMemory()
        self.dram = DRAMSystem(self.sim, self.config, self.memory,
                               self.stats)
        self.bank = CacheBank(self.sim, self.config, self.stats,
                              self.dram.req_in, sumback_sink=sumback_sink)
        self.sink = Sink(self.sim)
        self.sim.register(self.sink)

    def run(self, requests):
        self.sim.register(Feeder(self.bank.req_in, requests, per_cycle=1))
        return self.sim.run()


def read(addr, sink):
    return MemoryRequest(OP_READ, addr, reply_to=sink.fifo)


def write(addr, value, sink=None):
    return MemoryRequest(OP_WRITE, addr, value,
                         reply_to=sink.fifo if sink else None)


class TestCacheBank:
    def test_read_miss_fetches_from_memory(self):
        harness = BankHarness()
        harness.memory.write_word(5, 3.5)
        harness.run([read(5, harness.sink)])
        assert harness.sink.received[0].value == 3.5
        assert harness.stats.get(harness.bank.name + ".misses") == 1

    def test_read_hit_after_fill(self):
        harness = BankHarness()
        harness.memory.write_word(5, 3.5)
        harness.run([read(5, harness.sink)])  # fill completes
        harness.bank.req_in.push(read(5, harness.sink))
        harness.sim.run()
        assert [r.value for r in harness.sink.received] == [3.5, 3.5]
        assert harness.stats.get(harness.bank.name + ".hits") == 1
        assert harness.stats.get(harness.bank.name + ".misses") == 1

    def test_same_line_read_is_hit(self):
        harness = BankHarness()
        harness.memory.write_line(4, [1.0, 2.0, 3.0, 4.0])
        harness.run([read(4, harness.sink), read(7, harness.sink)])
        assert [r.value for r in harness.sink.received] == [1.0, 4.0]
        assert harness.stats.get(harness.bank.name + ".misses") == 1

    def test_write_read_through_cache(self):
        harness = BankHarness()
        harness.run([write(9, 7.0), read(9, harness.sink)])
        assert harness.sink.received[0].value == 7.0

    def test_dirty_eviction_writes_back(self):
        config = MachineConfig(cache_size_bytes=64, cache_associativity=1,
                               cache_banks=1)  # 2 lines of 4 words
        harness = BankHarness(config)
        # Write to line 0, then touch enough lines to evict it.
        requests = [write(0, 42.0)]
        line = config.cache_line_words
        sets = config.cache_sets_per_bank
        for i in range(1, 4):
            requests.append(read(i * line * sets, harness.sink))
        harness.run(requests)
        assert harness.memory.read_word(0) == 42.0
        assert harness.stats.get(harness.bank.name + ".writebacks") >= 1

    def test_eviction_victim_reclaimed_not_stale(self):
        """Regression: a miss must not overtake its line's pending
        write-back (the multi-node lost-update bug)."""
        config = MachineConfig(cache_size_bytes=64, cache_associativity=1,
                               cache_banks=1)
        harness = BankHarness(config)
        line = config.cache_line_words
        sets = config.cache_sets_per_bank
        requests = [write(0, 42.0)]
        # Conflict-evict line 0, then immediately read it back.
        requests.append(read(line * sets, harness.sink))
        requests.append(read(0, harness.sink))
        harness.run(requests)
        values = [r.value for r in harness.sink.received if r.addr == 0]
        assert values == [42.0]

    def test_mshr_piggyback_single_fill(self):
        harness = BankHarness()
        harness.memory.write_line(0, [1.0, 2.0, 3.0, 4.0])
        harness.run([read(0, harness.sink), read(1, harness.sink),
                     read(2, harness.sink)])
        assert [r.value for r in harness.sink.received] == [1.0, 2.0, 3.0]
        assert harness.stats.get(harness.bank.name + ".misses") == 1
        assert harness.stats.get(harness.bank.name + ".mshr_hits") >= 1
        assert harness.stats.get("dram.reads") == 1

    def test_combining_allocate_at_zero(self):
        harness = BankHarness()
        harness.memory.write_word(3, 100.0)  # must NOT be fetched
        request = MemoryRequest(OP_SCATTER_ADD, 3, 2.0, combining=True)
        harness.run([request])
        assert harness.bank.peek_word(3) == 2.0
        assert harness.stats.get(
            harness.bank.name + ".combining_allocs") == 1
        assert harness.stats.get("dram.reads") == 0

    def test_combining_merge_accumulates(self):
        harness = BankHarness()
        requests = [MemoryRequest(OP_SCATTER_ADD, 3, float(v), combining=True)
                    for v in (1, 2, 3)]
        harness.run(requests)
        assert harness.bank.peek_word(3) == 6.0

    def test_sumback_on_eviction(self):
        received = []

        def sink_fn(addr, value):
            received.append((addr, value))
            return True

        config = MachineConfig(cache_size_bytes=64, cache_associativity=1,
                               cache_banks=1)
        harness = BankHarness(config, sumback_sink=sink_fn)
        line = config.cache_line_words
        sets = config.cache_sets_per_bank
        requests = [MemoryRequest(OP_SCATTER_ADD, 0, 5.0, combining=True)]
        # Conflict-evict the combining line.
        requests.append(read(line * sets, harness.sink))
        harness.run(requests)
        assert received == [(0, 5.0)]
        # A sum-back is not a write-back: DRAM must not see the value.
        assert harness.memory.read_word(0) == 0.0

    def test_sumback_backpressure_retries(self):
        calls = {"n": 0}

        def stubborn_sink(addr, value):
            calls["n"] += 1
            return calls["n"] > 3  # reject the first three attempts

        config = MachineConfig(cache_size_bytes=64, cache_associativity=1,
                               cache_banks=1)
        harness = BankHarness(config, sumback_sink=stubborn_sink)
        line = config.cache_line_words
        sets = config.cache_sets_per_bank
        requests = [MemoryRequest(OP_SCATTER_ADD, 0, 5.0, combining=True),
                    read(line * sets, harness.sink)]
        harness.run(requests)
        assert calls["n"] == 4  # three rejections, one success

    def test_flush_writes_everything_back(self):
        harness = BankHarness()
        harness.run([write(0, 1.0), write(40, 2.0)])
        assert harness.memory.read_word(0) == 0.0  # still only in cache
        harness.bank.request_flush()
        harness.sim.run()
        assert harness.bank.flush_done
        assert harness.memory.read_word(0) == 1.0
        assert harness.memory.read_word(40) == 2.0
        assert harness.bank.resident_lines == 0

    def test_drain_to_functional_flush(self):
        harness = BankHarness()
        harness.run([write(2, 9.0)])
        harness.bank.drain_to(harness.memory)
        assert harness.memory.read_word(2) == 9.0

    def test_drain_to_adds_combining_lines(self):
        harness = BankHarness()
        harness.memory.write_word(2, 10.0)
        harness.run([MemoryRequest(OP_SCATTER_ADD, 2, 5.0, combining=True)])
        harness.bank.drain_to(harness.memory)
        assert harness.memory.read_word(2) == 15.0

    def test_non_combining_atomic_rejected(self):
        harness = BankHarness()
        harness.bank.req_in.push(MemoryRequest(OP_SCATTER_ADD, 0, 1.0))
        with pytest.raises(ValueError):
            harness.sim.run()

    def test_lru_keeps_recent_lines(self):
        config = MachineConfig(cache_size_bytes=64, cache_associativity=2,
                               cache_banks=1)  # one set of 2 lines
        harness = BankHarness(config)
        line = config.cache_line_words
        sets = config.cache_sets_per_bank
        stride = line * sets
        # Fill both ways with lines A and B; touch A; then C evicts B.
        harness.run([read(0, harness.sink), read(stride, harness.sink),
                     read(0, harness.sink), read(2 * stride, harness.sink),
                     read(0, harness.sink)])
        # The final read of A must be a hit (A stayed resident).
        misses = harness.stats.get(harness.bank.name + ".misses")
        assert misses == 3  # A, B, C only -- A never refetched

    def test_capacity_eviction_large_sweep(self, rng):
        config = MachineConfig(cache_size_bytes=256, cache_associativity=2,
                               cache_banks=1)
        harness = BankHarness(config)
        addrs = rng.integers(0, 4096, size=200)
        requests = [write(int(a), float(i)) for i, a in enumerate(addrs)]
        harness.run(requests)
        harness.bank.drain_to(harness.memory)
        # last write per address wins
        expected = {}
        for i, a in enumerate(addrs):
            expected[int(a)] = float(i)
        for addr, value in expected.items():
            assert harness.memory.read_word(addr) == value

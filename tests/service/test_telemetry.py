"""Service telemetry: /v1/metrics, NDJSON logs, SLO gate, repro top.

Three layers of contract:

1. **Exposition** -- a live daemon's ``GET /v1/metrics`` passes the
   strict validator and its counters agree with what the daemon just
   did (request counts, cache outcomes, job lifecycle, pool gauges).
2. **Observation-only** -- running the same job with and without
   telemetry produces byte-identical result payloads and cache entries:
   metering must never perturb the simulation.
3. **SLO** -- reference jobs classify to baseline workloads, floors
   derive from ``cycles_per_second x fraction``, and ``repro slo
   --check`` exits nonzero exactly when a floor or ceiling is violated.
"""

import asyncio
import io
import json
import threading

import pytest

from repro.config import MachineConfig
from repro.obs.telemetry import validate_prometheus_text
from repro.service.cache import ResultCache
from repro.service.client import Client, ServiceError
from repro.service.logs import JsonLogger, NullLogger
from repro.service.schema import canonical_job, execute_job, job_key
from repro.service.server import Server
from repro.service.slo import (
    SLOEvaluator,
    histogram_job,
    reference_jobs,
    render_slo,
)
from repro.service.store import JobStore
from repro.service.telemetry import ServiceTelemetry
from repro.service.top import run_top


def job_spec(**overrides):
    spec = {
        "type": "run",
        "op": "scatter_add",
        "indices": [1, 2, 2, 3],
        "values": 1.0,
        "num_targets": 5,
        "sim": {"config": MachineConfig.uniform().to_dict()},
    }
    spec.update(overrides)
    return spec


def canonical(payload):
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


class _ServiceThread:
    """The asyncio server on an ephemeral port in a background thread."""

    def __init__(self, cache_dir, **server_kwargs):
        self.server = Server(cache_dir, workers=0, **server_kwargs)
        self.loop = asyncio.new_event_loop()
        self.port = None
        self._ready = threading.Event()
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("service thread never became ready")

    def _run(self):
        asyncio.set_event_loop(self.loop)

        async def bind():
            _, self.port = await self.server.start("127.0.0.1", 0)
            self._ready.set()

        self.loop.run_until_complete(bind())
        self.loop.run_forever()

    def client(self):
        client = Client("http://127.0.0.1:%d" % self.port, timeout=60)
        client.wait_ready(timeout=30)
        return client

    def stop(self):
        asyncio.run_coroutine_threadsafe(self.server.close(),
                                         self.loop).result(timeout=10)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10)
        self.loop.close()


@pytest.fixture
def service(tmp_path):
    thread = _ServiceThread(tmp_path / "cache")
    yield thread.client()
    thread.stop()


class TestMetricsEndpoint:
    def test_exposition_is_validator_clean_and_consistent(self, service):
        first = service.submit(job_spec())
        second = service.submit(job_spec())
        assert second["cached"]
        run = first["result"]["run"]

        families = validate_prometheus_text(service.metrics())
        assert families["repro_http_requests_total"].value(
            {"endpoint": "jobs", "method": "POST", "status": "200"}) == 2
        assert families["repro_http_request_seconds"].value(
            {"endpoint": "jobs"}, suffix="_count") == 2
        assert families["repro_cache_lookups_total"].value(
            {"outcome": "miss"}) == 1
        assert families["repro_cache_lookups_total"].value(
            {"outcome": "hit"}) == 1
        assert families["repro_jobs_total"].value(
            {"type": "run", "event": "submitted"}) == 2
        assert families["repro_jobs_total"].value(
            {"type": "run", "event": "done"}) == 2
        assert families["repro_jobs_total"].value(
            {"type": "run", "event": "cached"}) == 1
        assert families["repro_simulations_total"].value({}) == 1
        assert families["repro_simulated_cycles_total"].value(
            {}) == run["cycles"]
        assert families["repro_jobs_inflight"].value({}) == 0
        assert families["repro_job_run_seconds"].value(
            {}, suffix="_count") == 1
        assert families["repro_job_queue_wait_seconds"].value(
            {}, suffix="_count") == 1
        assert families["repro_uptime_seconds"].value({}) > 0
        assert families["repro_slo_healthy"].value({}) == 1

    def test_request_counter_includes_error_statuses(self, service):
        with pytest.raises(ServiceError):
            service.status("j999999")
        families = validate_prometheus_text(service.metrics())
        assert families["repro_http_requests_total"].value(
            {"endpoint": "job", "method": "GET", "status": "404"}) == 1

    def test_stats_endpoint_shape_is_stable(self, service):
        service.submit(job_spec())
        stats = service.stats()
        assert set(stats) == {"jobs", "uptime_seconds", "cache", "pool",
                              "jobs_submitted", "jobs_deduped",
                              "simulations", "simulated_cycles",
                              "points_completed"}
        assert set(stats["cache"]) == {"hits", "misses", "corrupt",
                                       "entries"}
        assert set(stats["pool"]) == {"workers", "retries_performed",
                                      "workers_respawned"}
        assert stats["jobs"] == 1 and stats["cache"]["entries"] == 1


class TestObservationOnly:
    def test_result_payload_bit_identical_with_telemetry(self, tmp_path):
        """Telemetry must never perturb simulation results."""
        spec = canonical_job(job_spec(sim={
            "config": MachineConfig.uniform().to_dict(),
            "sample_every": 16,
        }))
        direct = execute_job(spec)

        async def main():
            server = Server(tmp_path / "cache", workers=0,
                            log_path=str(tmp_path / "jobs.ndjson"))
            try:
                return await server.submit(spec)
            finally:
                await server.close()

        served = asyncio.run(main())
        assert canonical(served["result"]["run"]) == canonical(direct)

    def test_cache_entry_bytes_identical_with_telemetry(self, tmp_path):
        """On-disk cache entries don't change when telemetry is attached."""
        spec = canonical_job(job_spec())
        key = job_key(spec)
        payload = execute_job(spec)
        plain = ResultCache(tmp_path / "plain")
        metered = ResultCache(tmp_path / "metered",
                              telemetry=ServiceTelemetry())
        path_plain = plain.put(key, spec, payload)
        path_metered = metered.put(key, spec, payload)
        with open(path_plain, "rb") as a, open(path_metered, "rb") as b:
            assert a.read() == b.read()


class TestCacheTelemetry:
    def test_lookup_outcomes_mirror_to_labeled_counter(self, tmp_path):
        telemetry = ServiceTelemetry()
        cache = ResultCache(tmp_path / "cache", telemetry=telemetry)
        spec = canonical_job(job_spec())
        key = job_key(spec)

        assert cache.get(key) is None                       # miss
        cache.put(key, spec, {"cycles": 1})
        assert cache.get(key) == {"cycles": 1}              # hit
        with open(cache.path(key), "w") as handle:
            handle.write("{truncated")
        assert cache.get(key) is None                       # corrupt

        values = {
            outcome: telemetry.cache_lookups.labels(
                outcome=outcome).value
            for outcome in ("hit", "miss", "corrupt")}
        # One outcome per lookup: the quarantined entry is 'corrupt',
        # NOT also 'miss' (unlike the legacy stats() counters, which
        # keep their historical miss+corrupt double-count).
        assert values == {"hit": 1, "miss": 1, "corrupt": 1}
        assert cache.stats() == {"hits": 1, "misses": 2, "corrupt": 1}

    def test_quarantine_deletes_the_corrupt_entry(self, tmp_path):
        telemetry = ServiceTelemetry()
        cache = ResultCache(tmp_path / "cache", telemetry=telemetry)
        spec = canonical_job(job_spec())
        key = job_key(spec)
        cache.put(key, spec, {"cycles": 1})
        with open(cache.path(key), "w") as handle:
            json.dump({"schema": "wrong/0", "key": key,
                       "payload": {}}, handle)
        assert cache.get(key) is None
        assert key not in cache
        assert telemetry.cache_lookups.labels(outcome="corrupt").value == 1


class TestTelemetryHooks:
    def test_failed_job_counts_and_settles_exactly_once(self):
        telemetry = ServiceTelemetry()
        store = JobStore(telemetry=telemetry)
        spec = canonical_job(job_spec())

        async def main():
            job = store.create(job_key(spec), spec)
            job.mark_running()
            telemetry.job_started(job)
            await job.finish(error="RuntimeError: boom")
            store.settle(job)
            store.settle(job)  # double settle must not double count

        asyncio.run(main())
        jobs = telemetry.jobs_total
        assert jobs.labels(type="run", event="submitted").value == 1
        assert jobs.labels(type="run", event="failed").value == 1
        assert jobs.labels(type="run", event="done").value == 0
        families = validate_prometheus_text(telemetry.render())
        assert families["repro_jobs_inflight"].value({}) == 0
        assert families["repro_job_run_seconds"].value(
            {}, suffix="_count") == 1

    def test_slo_receives_job_latency_from_settlement(self):
        slo = SLOEvaluator()
        telemetry = ServiceTelemetry(slo=slo)
        store = JobStore(telemetry=telemetry)
        spec = canonical_job(job_spec())

        async def main():
            job = store.create(job_key(spec), spec)
            job.mark_running()
            await job.finish(result={"kind": "run"})
            store.settle(job)

        asyncio.run(main())
        latency = slo.evaluate()["job_latency"]
        assert latency["jobs_observed"] == 1
        assert latency["p99_seconds"] >= 0


class TestJsonLogger:
    def test_lines_are_sorted_canonical_ndjson(self, tmp_path):
        path = tmp_path / "log" / "out.ndjson"
        logger = JsonLogger(path)
        record = logger.log("access", status=200, method="GET")
        logger.log("job", phase="done", job_id="j1")
        logger.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["event"] == "access" and first["status"] == 200
        assert "ts" in first and first["ts"] == record["ts"]
        # keys sorted -> identical events are byte-identical lines
        assert lines[0] == json.dumps(json.loads(lines[0]),
                                      sort_keys=True,
                                      separators=(",", ":"))

    def test_never_written_logger_leaves_no_file(self, tmp_path):
        path = tmp_path / "never.ndjson"
        logger = JsonLogger(path)
        logger.close()
        assert not path.exists()

    def test_null_logger_is_inert(self):
        logger = NullLogger()
        assert logger.log("access", status=200) is None
        logger.close()

    def test_daemon_writes_access_and_job_records(self, tmp_path):
        log_path = tmp_path / "daemon.ndjson"
        thread = _ServiceThread(tmp_path / "cache",
                                log_path=str(log_path))
        try:
            client = thread.client()
            client.submit(job_spec())
            client.metrics()
        finally:
            thread.stop()
        lines = [json.loads(line)
                 for line in log_path.read_text().splitlines()]
        events = {line["event"] for line in lines}
        assert events == {"access", "job"}
        phases = [line["phase"] for line in lines
                  if line["event"] == "job"]
        assert phases == ["submitted", "started", "done"]
        done = [line for line in lines
                if line["event"] == "job" and line["phase"] == "done"][0]
        assert done["cached"] is False and done["seconds"] >= 0
        endpoints = {line["endpoint"] for line in lines
                     if line["event"] == "access"}
        assert {"jobs", "metrics"} <= endpoints


def _baseline(cps):
    """A minimal repro.bench/2 baseline giving every engine `cps`."""
    from repro.cli import BENCH_SCHEMA
    from repro.sim.engine import SCHEDULERS

    return {
        "schema": BENCH_SCHEMA,
        "engines": list(SCHEDULERS),
        "workloads": {
            "histogram": {engine: {"cycles_per_second": cps}
                          for engine in SCHEDULERS},
            "fig11_latency256": {engine: {"cycles_per_second": cps}
                                 for engine in SCHEDULERS},
        },
    }


class TestSLOEvaluator:
    def test_reference_jobs_classify_by_content_key(self):
        evaluator = SLOEvaluator()
        for workload, engine, key, _job in reference_jobs():
            assert evaluator.classify(key) == (workload, engine)
        assert evaluator.classify("0" * 64) == ("other", "")

    def test_floors_derive_from_baseline_times_fraction(self):
        evaluator = SLOEvaluator(baseline=_baseline(1000.0),
                                 throughput_fraction=0.1)
        _, _, key, _job = reference_jobs()[0]
        evaluator.record_simulation(key, cycles=50, seconds=1.0)
        report = evaluator.evaluate()
        row = next(r for r in report["workloads"] if r["samples"])
        assert row["floor_cycles_per_second"] == pytest.approx(100.0)
        assert row["observed_cycles_per_second"] == pytest.approx(50.0)
        assert not row["ok"] and not report["ok"]
        assert any("below the" in v for v in report["violations"])

    def test_meeting_the_floor_is_ok(self):
        evaluator = SLOEvaluator(baseline=_baseline(1000.0),
                                 throughput_fraction=0.1)
        _, _, key, _job = reference_jobs()[0]
        evaluator.record_simulation(key, cycles=500, seconds=1.0)
        assert evaluator.evaluate()["ok"]

    def test_unmatched_jobs_observe_under_other_without_floor(self):
        evaluator = SLOEvaluator(baseline=_baseline(1e12))
        evaluator.record_simulation("f" * 64, cycles=10, seconds=1.0)
        report = evaluator.evaluate()
        other = next(r for r in report["workloads"]
                     if r["workload"] == "other")
        assert other["floor_cycles_per_second"] is None and other["ok"]

    def test_floorless_evaluator_never_violates(self):
        evaluator = SLOEvaluator()
        evaluator.record_simulation("a" * 64, cycles=1, seconds=100.0)
        evaluator.record_job_seconds(9999.0)
        assert evaluator.evaluate()["ok"]

    def test_negative_throughput_fraction_rejected(self):
        with pytest.raises(ValueError):
            SLOEvaluator(throughput_fraction=-0.1)

    def test_p99_nearest_rank_and_ceiling(self):
        evaluator = SLOEvaluator(p99_ceiling_seconds=0.5)
        for index in range(100):
            evaluator.record_job_seconds(index / 100.0)
        assert evaluator.p99_job_seconds() == pytest.approx(0.98)
        report = evaluator.evaluate()
        assert not report["job_latency"]["ok"] and not report["ok"]
        evaluator = SLOEvaluator(p99_ceiling_seconds=2.0)
        evaluator.record_job_seconds(0.1)
        assert evaluator.evaluate()["ok"]

    def test_from_baseline_file_tolerates_missing_file(self, tmp_path):
        evaluator = SLOEvaluator.from_baseline_file(
            str(tmp_path / "nope.json"))
        assert evaluator.evaluate()["baseline_schema"] is None
        evaluator = SLOEvaluator.from_baseline_file(None)
        assert evaluator.evaluate()["ok"]

    def test_from_real_baseline_file_installs_floors(self):
        evaluator = SLOEvaluator.from_baseline_file(
            "benchmarks/baseline.json")
        report = evaluator.evaluate()
        floors = [row for row in report["workloads"]
                  if row["floor_cycles_per_second"]]
        assert floors, "shipped baseline must yield at least one floor"
        assert report["ok"], "no observations -> nothing can violate"

    def test_render_slo_is_humane(self):
        evaluator = SLOEvaluator(baseline=_baseline(1000.0))
        text = render_slo(evaluator.evaluate())
        assert "SLO status: OK" in text
        assert "histogram" in text

    def test_rolling_window_evicts_old_samples(self):
        evaluator = SLOEvaluator(window=4)
        for _ in range(10):
            evaluator.record_simulation("a" * 64, 100, 1.0)
        report = evaluator.evaluate()
        other = next(r for r in report["workloads"]
                     if r["workload"] == "other")
        assert other["samples"] == 4


class TestSLOEndToEnd:
    def _serve(self, tmp_path, slo):
        thread = _ServiceThread(tmp_path / "cache", slo=slo)
        return thread, thread.client()

    def test_slo_endpoint_and_gauges_reflect_violation(self, tmp_path):
        # An absurd baseline floor no real simulation can sustain.
        thread, client = self._serve(
            tmp_path, SLOEvaluator(baseline=_baseline(1e15)))
        try:
            client.submit(histogram_job("event"))
            payload = client.slo()
            assert payload["schema"] == "repro.slo/1"
            assert not payload["ok"] and payload["violations"]
            families = validate_prometheus_text(client.metrics())
            assert families["repro_slo_healthy"].value({}) == 0
            assert families["repro_slo_ok"].value(
                {"workload": "histogram", "engine": "event"}) == 0
            assert families["repro_slo_cycles_per_second"].value(
                {"workload": "histogram", "engine": "event"}) > 0
            assert families["repro_slo_cycles_per_second_floor"].value(
                {"workload": "histogram", "engine": "event"}) > 0
        finally:
            thread.stop()

    def test_slo_cli_check_exit_codes(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        thread, client = self._serve(
            tmp_path, SLOEvaluator(baseline=_baseline(1e15)))
        try:
            url = "http://127.0.0.1:%d" % thread.port
            assert cli_main(["slo", "--server", url]) == 0
            client.submit(histogram_job("event"))
            assert cli_main(["slo", "--check", "--server", url]) == 1
            out = capsys.readouterr().out
            assert "VIOLATED" in out
            assert cli_main(["slo", "--json", "--server", url]) == 0
            payload = json.loads(capsys.readouterr().out)
            assert payload["schema"] == "repro.slo/1"
        finally:
            thread.stop()
        assert cli_main(["slo", "--check", "--server",
                         "http://127.0.0.1:1"]) == 2


class TestTopDashboard:
    def test_renders_live_frames_from_scrapes(self, tmp_path):
        thread = _ServiceThread(tmp_path / "cache")
        try:
            client = thread.client()
            client.submit(job_spec())
            client.submit(job_spec())
            out = io.StringIO()
            frames = run_top("http://127.0.0.1:%d" % thread.port,
                             interval=0.05, iterations=2, out=out,
                             clear=False)
        finally:
            thread.stop()
        assert frames == 2
        text = out.getvalue()
        assert "repro top" in text
        assert "SLO HEALTHY" in text
        assert "50.0% hit ratio" in text
        assert "2 done" in text

    def test_unreachable_daemon_counts_zero_frames(self):
        out = io.StringIO()
        frames = run_top("http://127.0.0.1:1", interval=0.01,
                         iterations=2, out=out, clear=False)
        assert frames == 0
        assert "cannot scrape" in out.getvalue()

    def test_cli_top_exits_nonzero_when_unreachable(self):
        from repro.cli import main as cli_main

        assert cli_main(["top", "--server", "http://127.0.0.1:1",
                         "--iterations", "1", "--no-clear"]) == 1

"""Cache-key stability and job-spec validation (repro.service.schema).

The content-addressed cache is only correct if every spelling of the
same work hashes to the same key, and anything that changes the work (or
how it is executed) hashes to a different one.  These tests pin both
directions.
"""

import dataclasses

import pytest

from repro.config import MachineConfig
from repro.service.schema import (
    JOB_SCHEMA,
    JobError,
    canonical_job,
    execute_job,
    job_key,
    point_jobs,
)
from repro.sim import engine as _engine


def base_spec(**overrides):
    spec = {
        "type": "run",
        "op": "scatter_add",
        "indices": [1, 2, 2, 3],
        "values": 1.0,
        "num_targets": 5,
        "sim": {"config": MachineConfig.uniform().to_dict()},
    }
    spec.update(overrides)
    return spec


def key_of(spec):
    return job_key(canonical_job(spec))


class TestKeyStability:
    def test_same_work_same_key(self):
        assert key_of(base_spec()) == key_of(base_spec())

    def test_config_spelling_is_irrelevant(self):
        """kwargs, dict and with_changes() spellings hash identically."""
        via_kwargs = MachineConfig(memory_model="uniform",
                                   uniform_latency=32, uniform_interval=1)
        via_dict = MachineConfig.from_dict(via_kwargs.to_dict())
        via_changes = MachineConfig.uniform().with_changes(
            uniform_latency=32, uniform_interval=1)
        keys = {
            key_of(base_spec(sim={"config": config.to_dict()}))
            for config in (via_kwargs, via_dict, via_changes)
        }
        assert len(keys) == 1
        hashes = {config.canonical_hash()
                  for config in (via_kwargs, via_dict, via_changes)}
        assert len(hashes) == 1

    def test_defaults_expand_to_explicit_values(self):
        """Omitted fields hash the same as spelling the default out."""
        implicit = base_spec()
        del implicit["num_targets"]
        implicit["indices"] = [1, 2, 2, 4]
        explicit = base_spec(indices=[1, 2, 2, 4], num_targets=5)
        assert key_of(implicit) == key_of(explicit)

    def test_scalar_values_normalise(self):
        assert key_of(base_spec(values=1)) == key_of(base_spec(values=1.0))

    def test_default_sim_section_matches_table1(self):
        spec = base_spec()
        del spec["sim"]
        assert key_of(spec) == key_of(
            base_spec(sim={"config": MachineConfig.table1().to_dict()}))

    @pytest.mark.parametrize("field", [
        field.name for field in dataclasses.fields(MachineConfig)
    ])
    def test_any_semantic_config_change_changes_key(self, field):
        base = MachineConfig.table1()
        value = getattr(base, field)
        # Valid alternates for fields whose validation constrains them.
        alternates = {
            "memory_model": {"memory_model": "uniform"},
            "dram_model": {"dram_model": "rowbuffer"},
            "dram_scheduling": {"dram_scheduling": "inorder"},
            "cache_banks": {"cache_banks": base.cache_banks * 2},
            "hierarchical_combining": {"hierarchical_combining": True,
                                       "cache_combining": True},
            "network": {"network": {"nodes": 2}},
        }
        if field in alternates:
            override = alternates[field]
        elif isinstance(value, bool):
            override = {field: not value}
        else:
            override = {field: value + 1}
        spec = base_spec(sim={"config": base.with_changes(
            **override).to_dict()})
        assert key_of(spec) != key_of(base_spec(sim={"config":
                                                     base.to_dict()}))

    @pytest.mark.parametrize("mutation", [
        {"op": "scatter_min"},
        {"indices": [1, 2, 2, 4]},
        {"values": 2.0},
        {"num_targets": 6},
        {"initial": [1.0, 0.0, 0.0, 0.0, 0.0]},
        {"base": 16, "num_targets": 5},
    ])
    def test_operand_changes_change_key(self, mutation):
        spec = base_spec(**mutation)
        assert key_of(spec) != key_of(base_spec())

    def test_engine_changes_key(self):
        """Engines are bit-identical but deliberately part of the key."""
        event = base_spec(sim={"config": MachineConfig.uniform().to_dict(),
                               "engine": "event"})
        columnar = base_spec(sim={"config":
                                  MachineConfig.uniform().to_dict(),
                                  "engine": "columnar"})
        assert key_of(event) != key_of(columnar)

    def test_default_engine_resolves_before_hashing(self):
        """engine omitted == engine pinned to the process default."""
        implicit = base_spec()
        with _engine.use_scheduler("columnar"):
            resolved = key_of(implicit)
        pinned = base_spec(sim={"config": MachineConfig.uniform().to_dict(),
                                "engine": "columnar"})
        assert resolved == key_of(pinned)
        assert resolved != key_of(implicit)  # back on the default engine

    def test_chaining_and_obs_knobs_change_key(self):
        for knob in ({"chaining": False}, {"sample_every": 64},
                     {"trace_requests": 1}):
            sim = {"config": MachineConfig.uniform().to_dict(), **knob}
            assert key_of(base_spec(sim=sim)) != key_of(base_spec())

    def test_key_is_version_tagged_sha256(self):
        key = key_of(base_spec())
        assert len(key) == 64
        assert JOB_SCHEMA == "repro.job/1"


class TestValidation:
    @pytest.mark.parametrize("spec,match", [
        ([1, 2, 3], "JSON object"),
        (base_spec(type="batch"), "unknown job type"),
        (base_spec(op="scatter_div"), "unknown op"),
        ({"type": "run", "op": "scatter_add"}, "lacks 'indices'"),
        (base_spec(indices=["a"]), "array of integers"),
        (base_spec(indices=[1, 9], num_targets=5), "out of range"),
        (base_spec(values=[1.0]), "length"),
        (base_spec(extra_field=1), "unknown job field"),
        (base_spec(sim={"config": {}, "bogus": 1}), "unknown sim field"),
        (base_spec(sim={"config": {"no_such_field": 1}}), "sim.config"),
        (base_spec(sim={"config": None, "engine": "warp"}),
         "unknown engine"),
        (base_spec(type="sweep", points=[1, 2]), "'field'"),
        (base_spec(type="sweep", field="uniform_latency", points=[]),
         "points"),
        (base_spec(type="sweep", field="fu_latency", points=[0]),
         "invalid design point"),
        (base_spec(type="grid_sweep"), "'fields'"),
    ])
    def test_bad_specs_rejected(self, spec, match):
        with pytest.raises(JobError, match=match):
            canonical_job(spec)

    def test_job_error_is_value_error(self):
        assert issubclass(JobError, ValueError)


class TestPointJobs:
    def test_run_expands_to_itself(self):
        job = canonical_job(base_spec())
        overrides, points = point_jobs(job)
        assert overrides == [{}]
        assert points == [job]

    def test_sweep_points_match_individual_runs(self):
        """Each sharded point hashes like the equivalent single-run job."""
        sweep = canonical_job(base_spec(
            type="sweep", field="uniform_latency", points=[16, 32]))
        overrides, points = point_jobs(sweep)
        assert overrides == [{"uniform_latency": 16},
                             {"uniform_latency": 32}]
        for override, point in zip(overrides, points):
            config = MachineConfig.uniform().with_changes(**override)
            single = canonical_job(base_spec(sim={"config":
                                                  config.to_dict()}))
            assert job_key(point) == job_key(single)

    def test_grid_sweep_row_major_order(self):
        grid = canonical_job(base_spec(
            type="grid_sweep",
            fields={"uniform_latency": [16, 32], "uniform_interval": [1, 2]},
        ))
        overrides, points = point_jobs(grid)
        assert overrides == [
            {"uniform_latency": 16, "uniform_interval": 1},
            {"uniform_latency": 16, "uniform_interval": 2},
            {"uniform_latency": 32, "uniform_interval": 1},
            {"uniform_latency": 32, "uniform_interval": 2},
        ]
        assert len({job_key(point) for point in points}) == 4


class TestExecuteJob:
    def test_matches_direct_simulation(self):
        from repro.api import Simulation

        job = canonical_job(base_spec())
        payload = execute_job(job)
        run = Simulation(MachineConfig.uniform()).run(
            "scatter_add", [1, 2, 2, 3], 1.0, num_targets=5)
        assert payload == run.to_dict()

    def test_rejects_sweep_jobs(self):
        sweep = canonical_job(base_spec(
            type="sweep", field="uniform_latency", points=[16]))
        with pytest.raises(JobError):
            execute_job(sweep)

    def test_multinode_job_served_end_to_end(self):
        # A nested network config rides through canonicalisation, the
        # key, and execution: the service returns a MultiNodeRun payload
        # with the sim.network.* counters intact.
        spec = {
            "op": "scatter_add",
            "indices": [1] * 40 + list(range(24)),
            "num_targets": 32,
            "sim": {"config": {"network": {
                "nodes": 4, "topology": "tree", "combine_site": "both",
                "link_bw_words": 1}}},
        }
        job = canonical_job(spec)
        payload = execute_job(job)
        assert payload["schema"] == "repro.multirun/1"
        assert payload["stats"]["sim.network.combined_in_flight"] > 0
        assert sum(payload["result"]) == len(spec["indices"])
        # Same spec, same key: multi-node jobs are cacheable too.
        assert job_key(job) == job_key(canonical_job(spec))

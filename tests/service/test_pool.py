"""ForkExecutor: persistent pool semantics and retry-on-worker-death.

Worker functions live at module level: task items cross the fork/pickle
boundary, and the death tests need deterministic, restart-aware
behaviour (a marker file tells a respawned worker's retry to succeed).
"""

import os
import time

import pytest

from repro.service.pool import ForkExecutor, WorkerDied


def square(item):
    return item * item


def raise_value_error(item):
    raise ValueError("bad item %r" % (item,))


def die_once(marker_path):
    """Die hard on first sight of the marker path, succeed after."""
    if not os.path.exists(marker_path):
        with open(marker_path, "w") as handle:
            handle.write("seen")
        os._exit(17)
    return "recovered"


def die_always(item):
    os._exit(23)


def sleep_briefly(item):
    time.sleep(0.2)
    return item


class TestBasics:
    def test_map_preserves_submission_order(self):
        with ForkExecutor(square, workers=3) as pool:
            futures = pool.map(range(20))
            assert [f.result(timeout=30) for f in futures] == [
                i * i for i in range(20)]

    def test_pool_is_reusable_across_batches(self):
        with ForkExecutor(square, workers=2) as pool:
            first = [f.result(timeout=30) for f in pool.map([1, 2, 3])]
            second = [f.result(timeout=30) for f in pool.map([4, 5])]
        assert first == [1, 4, 9]
        assert second == [16, 25]

    def test_submit_after_shutdown_raises(self):
        pool = ForkExecutor(square, workers=1)
        pool.shutdown()
        with pytest.raises(RuntimeError):
            pool.submit(1)

    def test_needs_at_least_one_worker(self):
        with pytest.raises(ValueError):
            ForkExecutor(square, workers=0)


class TestFailure:
    def test_task_exception_propagates_without_retry(self):
        """Deterministic task errors fail immediately — no re-execution."""
        with ForkExecutor(raise_value_error, workers=1, retries=3) as pool:
            future = pool.submit("x")
            with pytest.raises(RuntimeError, match="ValueError: bad item"):
                future.result(timeout=30)
            assert pool.retries_performed == 0
            # The worker survived the exception and still serves tasks.
            assert pool.submit("y") is not None

    def test_worker_death_retries_and_recovers(self, tmp_path):
        marker = str(tmp_path / "died-once")
        with ForkExecutor(die_once, workers=1, retries=1) as pool:
            future = pool.submit(marker)
            assert future.result(timeout=30) == "recovered"
            assert pool.retries_performed == 1
            assert pool.workers_respawned >= 1

    def test_retries_exhausted_raises_worker_died(self):
        with ForkExecutor(die_always, workers=1, retries=1) as pool:
            future = pool.submit("x")
            with pytest.raises(WorkerDied, match="exit code 23"):
                future.result(timeout=30)
            assert pool.retries_performed == 1

    def test_pool_survives_a_lost_worker(self, tmp_path):
        """Other tasks complete normally around a death + respawn."""
        marker = str(tmp_path / "died-once")
        with ForkExecutor(die_once, workers=2, retries=1) as pool:
            flaky = pool.submit(marker)
            steady = pool.map([str(tmp_path / "died-once")] * 3)
            assert flaky.result(timeout=30) == "recovered"
            for future in steady:
                assert future.result(timeout=30) == "recovered"

    def test_shutdown_cancels_backlog(self):
        pool = ForkExecutor(sleep_briefly, workers=1)
        futures = pool.map(range(30))
        pool.shutdown()
        # One task may be in flight on the single worker when shutdown
        # lands; everything still queued must come back cancelled.
        cancelled = sum(1 for future in futures if future.cancelled())
        assert cancelled >= len(futures) - 2


class TestSweepIntegration:
    def test_sweep_workers_route_through_fork_executor(self):
        """harness.sweep(workers=N) shards on the service pool."""
        from repro.config import MachineConfig
        from repro.harness.sweep import _measure_one, sweep

        base = MachineConfig.uniform()
        serial = sweep(base, "uniform_latency", [8, 16], _cycles_of,
                       workers=1)
        parallel = sweep(base, "uniform_latency", [8, 16], _cycles_of,
                         workers=2)
        assert parallel.rows == serial.rows

        with ForkExecutor(_measure_one, workers=2) as pool:
            shared = sweep(base, "uniform_latency", [8, 16], _cycles_of,
                           executor=pool)
        assert shared.rows == serial.rows


def _cycles_of(config):
    from repro.api import Simulation

    run = Simulation(config).run("scatter_add", [1, 2, 2, 3], 1.0,
                                 num_targets=5)
    return {"cycles": run.cycles}

"""The service daemon: cache hits, dedup, sweep sharding, HTTP API.

Most tests drive :class:`repro.service.server.Server` directly inside
``asyncio.run`` (workers=0 executes points inline — no fork pool needed
for correctness tests).  The HTTP tests boot the real asyncio server in
a background thread and talk to it through the blocking client, the same
path ``repro submit`` and the CI smoke job use.
"""

import asyncio
import json
import threading
import time

import pytest

from repro.config import MachineConfig
from repro.service.client import Client, ServiceError
from repro.service.server import Server


def job_spec(**overrides):
    spec = {
        "type": "run",
        "op": "scatter_add",
        "indices": [1, 2, 2, 3],
        "values": 1.0,
        "num_targets": 5,
        "sim": {"config": MachineConfig.uniform().to_dict()},
    }
    spec.update(overrides)
    return spec


def canonical(payload):
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def run_scenario(tmp_path, scenario):
    """Run `scenario(server)` against a fresh workers=0 server."""
    async def main():
        server = Server(tmp_path / "cache", workers=0)
        try:
            return await scenario(server)
        finally:
            await server.close()

    return asyncio.run(main())


class TestSubmit:
    def test_identical_job_simulates_exactly_once(self, tmp_path):
        async def scenario(server):
            first = await server.submit(job_spec())
            second = await server.submit(job_spec())
            return first, second, server.stats()

        first, second, stats = run_scenario(tmp_path, scenario)
        assert first["status"] == "done"
        assert not first["cached"]
        assert second["status"] == "done"
        assert second["cached"]
        run = first["result"]["run"]
        # The cached payload is byte-identical to the simulated one.
        assert canonical(second["result"]["run"]) == canonical(run)
        assert second["key"] == first["key"]
        # The engine-cycle ledger proves only one simulation happened.
        assert stats["simulations"] == 1
        assert stats["simulated_cycles"] == run["cycles"]
        assert stats["cache"] == {"hits": 1, "misses": 1, "corrupt": 0,
                                  "entries": 1}

    def test_concurrent_identical_jobs_dedup_in_flight(self, tmp_path):
        async def scenario(server):
            responses = await asyncio.gather(server.submit(job_spec()),
                                             server.submit(job_spec()))
            return responses, server.stats()

        (first, second), stats = run_scenario(tmp_path, scenario)
        assert stats["simulations"] == 1
        assert stats["jobs_deduped"] == 1
        deduped = second if second["deduped"] else first
        joined = first if second["deduped"] else second
        assert deduped["id"] == joined["id"]
        assert canonical(first["result"]["run"]) == canonical(
            second["result"]["run"])

    def test_bad_spec_raises_job_error(self, tmp_path):
        from repro.service.schema import JobError

        async def scenario(server):
            with pytest.raises(JobError, match="unknown op"):
                await server.submit(job_spec(op="scatter_div"))
            return server.stats()

        stats = run_scenario(tmp_path, scenario)
        assert stats["simulations"] == 0

    def test_corrupt_entry_recomputed(self, tmp_path):
        async def scenario(server):
            first = await server.submit(job_spec())
            path = server.cache.path(first["key"])
            with open(path) as handle:
                blob = handle.read()
            with open(path, "w") as handle:
                handle.write(blob[: len(blob) // 2])
            second = await server.submit(job_spec())
            third = await server.submit(job_spec())
            return first, second, third, server.stats()

        first, second, third, stats = run_scenario(tmp_path, scenario)
        assert not second["cached"]  # corrupt entry did not serve
        assert third["cached"]       # recomputed entry does
        assert stats["simulations"] == 2
        assert stats["cache"]["corrupt"] == 1
        assert canonical(first["result"]["run"]) == canonical(
            third["result"]["run"])

    def test_event_log_records_lifecycle(self, tmp_path):
        async def scenario(server):
            response = await server.submit(
                job_spec(sim={"config": MachineConfig.uniform().to_dict(),
                              "sample_every": 16}))
            job = server.store.get(response["id"])
            return response, job.events

        response, events = run_scenario(tmp_path, scenario)
        types = [event["type"] for event in events]
        assert types[0] == "queued"
        assert types[1] == "started"
        assert types[-1] == "done"
        assert events[0]["job_type"] == "run"
        timelines = [event for event in events if event["type"] == "timeline"]
        assert timelines  # sampled runs stream one event per window
        assert {"window", "cycle", "values"} <= set(timelines[0])


class TestSweeps:
    def test_sweep_shards_into_cached_points(self, tmp_path):
        sweep = job_spec(type="sweep", field="uniform_latency",
                         points=[16, 32])

        async def scenario(server):
            first = await server.submit(sweep)
            repeat = await server.submit(sweep)
            config16 = MachineConfig.uniform().with_changes(
                uniform_latency=16)
            point = await server.submit(
                job_spec(sim={"config": config16.to_dict()}))
            return first, repeat, point, server.stats()

        first, repeat, point, stats = run_scenario(tmp_path, scenario)
        result = first["result"]
        assert result["kind"] == "sweep"
        assert result["field"] == "uniform_latency"
        assert [row["uniform_latency"] for row in result["rows"]] == [16, 32]
        assert result["points_cached"] == 0
        assert all(row["cycles"] > 0 for row in result["rows"])
        # Repeating the sweep simulates nothing new.
        assert repeat["result"]["points_cached"] == 2
        assert stats["simulations"] == 2
        # A single-run job matching one design point shares its entry.
        assert point["cached"]
        assert point["key"] == result["rows"][0]["key"]
        assert stats["points_completed"] == 4

    def test_grid_sweep_rows_in_row_major_order(self, tmp_path):
        grid = job_spec(type="grid_sweep",
                        fields={"uniform_latency": [16, 32],
                                "uniform_interval": [1, 2]})

        async def scenario(server):
            return await server.submit(grid)

        response = run_scenario(tmp_path, scenario)
        result = response["result"]
        assert result["kind"] == "grid_sweep"
        assert result["fields"] == ["uniform_latency", "uniform_interval"]
        assert [(row["uniform_latency"], row["uniform_interval"])
                for row in result["rows"]] == [
            (16, 1), (16, 2), (32, 1), (32, 2)]
        assert len({row["key"] for row in result["rows"]}) == 4


# ---------------------------------------------------------------------- #
# HTTP layer
# ---------------------------------------------------------------------- #
class _ServiceThread:
    """The asyncio server on an ephemeral port in a background thread."""

    def __init__(self, cache_dir):
        self.server = Server(cache_dir, workers=0)
        self.loop = asyncio.new_event_loop()
        self.port = None
        self._ready = threading.Event()
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("service thread never became ready")

    def _run(self):
        asyncio.set_event_loop(self.loop)

        async def bind():
            _, self.port = await self.server.start("127.0.0.1", 0)
            self._ready.set()

        self.loop.run_until_complete(bind())
        self.loop.run_forever()

    def stop(self):
        asyncio.run_coroutine_threadsafe(self.server.close(),
                                         self.loop).result(timeout=10)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10)
        self.loop.close()


@pytest.fixture
def service(tmp_path):
    thread = _ServiceThread(tmp_path / "cache")
    client = Client("http://127.0.0.1:%d" % thread.port, timeout=60)
    client.wait_ready(timeout=30)
    yield client
    thread.stop()


class TestHttp:
    def test_end_to_end_over_http(self, service):
        assert service.healthz() == {"ok": True}

        first = service.submit(job_spec())
        assert first["status"] == "done"
        assert not first["cached"]
        run = first["result"]["run"]

        second = service.submit(job_spec())
        assert second["cached"]
        assert canonical(second["result"]["run"]) == canonical(run)
        assert service.stats()["simulations"] == 1

        # Job endpoints agree with the submission response.
        status = service.status(first["id"])
        assert status["status"] == "done"
        assert service.result(first["id"])["run"] == run
        entry = service.cache_entry(first["key"])
        assert entry["payload"] == run

        events = list(service.events(first["id"]))
        assert [event["type"] for event in events][0] == "queued"
        assert events[-1]["type"] == "done"

    def test_client_run_rebuilds_scatter_run(self, service):
        from repro.api import ScatterRun, scatter_add_reference
        import numpy as np

        run = service.run(job_spec())
        assert isinstance(run, ScatterRun)
        expected = scatter_add_reference(np.zeros(5), [1, 2, 2, 3], 1.0)
        assert np.array_equal(run.result, expected)
        assert run.cycles > 0

    def test_wait_false_returns_before_completion(self, service):
        response = service.submit(job_spec(indices=list(range(64)),
                                           num_targets=64), wait=False)
        assert response["status"] in ("queued", "running", "done")
        deadline = time.monotonic() + 30
        while service.status(response["id"])["status"] != "done":
            assert time.monotonic() < deadline, "job never completed"
            time.sleep(0.02)
        assert service.result(response["id"])["run"]["cycles"] > 0

    def test_http_errors(self, service):
        with pytest.raises(ServiceError) as bad_spec:
            service.submit(job_spec(op="scatter_div"))
        assert bad_spec.value.status == 400

        with pytest.raises(ServiceError) as missing:
            service.status("j999999")
        assert missing.value.status == 404

        with pytest.raises(ServiceError) as no_entry:
            service.cache_entry("0" * 64)
        assert no_entry.value.status == 404

"""Content-addressed result cache: atomicity and corruption recovery."""

import json
import os

import pytest

from repro.service.cache import CACHE_SCHEMA, ResultCache

KEY = "ab" + "0" * 62
OTHER = "cd" + "1" * 62
PAYLOAD = {"schema": "repro.run/1", "cycles": 42, "result": [1.0, 2.0]}
JOB = {"type": "run", "op": "scatter_add"}


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


class TestRoundTrip:
    def test_miss_then_hit(self, cache):
        assert cache.get(KEY) is None
        cache.put(KEY, JOB, PAYLOAD)
        assert cache.get(KEY) == PAYLOAD
        assert cache.stats() == {"hits": 1, "misses": 1, "corrupt": 0}

    def test_fanout_layout(self, cache):
        path = cache.put(KEY, JOB, PAYLOAD)
        assert path == os.path.join(cache.root, KEY[:2], KEY + ".json")
        assert KEY in cache
        assert OTHER not in cache
        assert len(cache) == 1

    def test_entry_records_schema_key_and_job(self, cache):
        with open(cache.put(KEY, JOB, PAYLOAD)) as handle:
            entry = json.load(handle)
        assert entry == {"schema": CACHE_SCHEMA, "key": KEY, "job": JOB,
                         "payload": PAYLOAD}

    def test_put_is_idempotent_and_leaves_no_temp_files(self, cache):
        cache.put(KEY, JOB, PAYLOAD)
        cache.put(KEY, JOB, PAYLOAD)
        assert len(cache) == 1
        leftovers = [name for _, __, files in os.walk(cache.root)
                     for name in files if not name.endswith(".json")]
        assert leftovers == []


class TestCorruption:
    """Malformed entries are detected, quarantined and recomputed."""

    def _assert_quarantined(self, cache):
        assert cache.get(KEY) is None
        assert cache.corrupt == 1
        assert not os.path.exists(cache.path(KEY))
        # The caller recomputes and rewrites; the entry serves again.
        cache.put(KEY, JOB, PAYLOAD)
        assert cache.get(KEY) == PAYLOAD

    def test_truncated_entry(self, cache):
        path = cache.put(KEY, JOB, PAYLOAD)
        with open(path) as handle:
            blob = handle.read()
        with open(path, "w") as handle:
            handle.write(blob[: len(blob) // 2])
        self._assert_quarantined(cache)

    def test_garbage_bytes(self, cache):
        path = cache.put(KEY, JOB, PAYLOAD)
        with open(path, "wb") as handle:
            handle.write(b"\x00\xff not json")
        self._assert_quarantined(cache)

    def test_wrong_schema_tag(self, cache):
        path = cache.put(KEY, JOB, PAYLOAD)
        with open(path) as handle:
            entry = json.load(handle)
        entry["schema"] = "repro.cache-entry/999"
        with open(path, "w") as handle:
            json.dump(entry, handle)
        self._assert_quarantined(cache)

    def test_misfiled_entry(self, cache):
        """An entry whose recorded key disagrees with its address."""
        cache.put(OTHER, JOB, PAYLOAD)
        os.makedirs(os.path.dirname(cache.path(KEY)), exist_ok=True)
        os.rename(cache.path(OTHER), cache.path(KEY))
        self._assert_quarantined(cache)

    def test_non_dict_payload(self, cache):
        path = cache.path(KEY)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as handle:
            json.dump({"schema": CACHE_SCHEMA, "key": KEY,
                       "payload": [1, 2]}, handle)
        self._assert_quarantined(cache)

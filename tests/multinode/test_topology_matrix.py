"""CI topology axis: the multi-node stack under a selectable interconnect.

CI's engine-matrix jobs export ``REPRO_NET_TOPOLOGY`` (``crossbar`` or
``tree4``); locally the suite runs the crossbar by default.  Whatever the
topology, the multi-node system must produce exact results, all four
schedulers must agree on the cycle count, and the combining counters must
balance -- so a topology regression fails every job of that matrix row,
not just a hand-picked test.
"""

import os

import numpy as np
import pytest

from repro.config import MachineConfig, NetworkConfig
from repro.multinode.system import MultiNodeSystem
from repro.sim.engine import use_scheduler

#: Matrix value -> NetworkConfig keywords.
TOPOLOGIES = {
    "crossbar": {"topology": "crossbar", "combine_site": "network"},
    "tree4": {"topology": "tree", "tree_radix": 4, "combine_site": "both"},
}

AXIS = os.environ.get("REPRO_NET_TOPOLOGY", "crossbar")


@pytest.fixture(scope="module")
def network():
    if AXIS not in TOPOLOGIES:
        raise RuntimeError("unknown REPRO_NET_TOPOLOGY %r (expected %s)"
                           % (AXIS, "|".join(sorted(TOPOLOGIES))))
    return NetworkConfig(nodes=8, link_bw_words=2, **TOPOLOGIES[AXIS])


@pytest.fixture(scope="module")
def trace():
    rng = np.random.default_rng(11)
    targets = 128
    hot = rng.integers(0, targets, size=8)
    pick = rng.random(640) < 0.8
    indices = np.where(pick, hot[rng.integers(0, 8, size=640)],
                       rng.integers(0, targets, size=640))
    return indices, targets


class TestTopologyMatrix:
    def test_exact_result(self, network, trace):
        indices, targets = trace
        config = MachineConfig(network=network)
        system = MultiNodeSystem(config, address_space=targets)
        run = system.scatter_add(indices, 1.0, num_targets=targets)
        expected = np.zeros(targets)
        np.add.at(expected, indices, 1.0)
        np.testing.assert_array_equal(run.result, expected)

    def test_engines_agree_on_cycles(self, network, trace):
        indices, targets = trace
        config = MachineConfig(network=network)
        cycles = {}
        for engine in ("legacy", "event", "columnar", "fastforward"):
            with use_scheduler(engine):
                system = MultiNodeSystem(config, address_space=targets)
                run = system.scatter_add(indices, 1.0,
                                         num_targets=targets)
            cycles[engine] = run.cycles
        assert len(set(cycles.values())) == 1, cycles

    def test_network_counters_balance(self, network, trace):
        indices, targets = trace
        config = MachineConfig(network=network)
        system = MultiNodeSystem(config, address_space=targets)
        run = system.scatter_add(indices, 1.0, num_targets=targets)
        stats = run.stats.as_dict()
        assert (stats["sim.network.injected"]
                == stats["sim.network.delivered"]
                + stats["sim.network.combined_in_flight"])
        assert stats["sim.network.combined_in_flight"] > 0

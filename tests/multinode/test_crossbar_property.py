"""Property test: the crossbar delivers every request exactly once."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.memory.request import OP_WRITE, MemoryRequest
from repro.network.crossbar import Crossbar
from repro.sim.engine import Component, Simulator
from repro.sim.stats import Stats

from tests.conftest import Feeder


class Collector(Component):
    def __init__(self, sim, name):
        super().__init__(name)
        self.fifo = sim.fifo(capacity=3, name=name + ".in")
        self.tags = []

    def tick(self, now):
        while len(self.fifo):
            self.tags.append(self.fifo.pop().tag)


@settings(max_examples=20, deadline=None)
@given(
    st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3)),
             min_size=1, max_size=120),
    st.sampled_from([1, 2, 8]),
)
def test_exactly_once_delivery(traffic, bandwidth):
    """Random (source, dest) traffic under any bandwidth: every request is
    delivered to its destination exactly once, per-source order kept."""
    sim = Simulator()
    stats = Stats()
    nodes = 4
    collectors = [Collector(sim, "node%d" % n) for n in range(nodes)]
    for collector in collectors:
        sim.register(collector)
    crossbar = sim.register(Crossbar(
        sim, stats, nodes, bandwidth,
        dest_of=lambda addr: addr % nodes,
        outputs=[collector.fifo for collector in collectors],
    ))
    per_source = {n: [] for n in range(nodes)}
    for tag, (source, dest) in enumerate(traffic):
        per_source[source].append(
            MemoryRequest(OP_WRITE, dest, 0.0, tag=(source, tag)))
    for source, requests in per_source.items():
        if requests:
            sim.register(Feeder(crossbar.inputs[source], requests,
                                per_cycle=2))
    sim.run()
    delivered = [tag for collector in collectors for tag in collector.tags]
    assert sorted(delivered) == sorted(
        (source, tag) for tag, (source, __) in enumerate(traffic))
    # per (source, dest) pair, arrival order == send order
    for collector in collectors:
        for source in range(nodes):
            seq = [tag for (s, tag) in collector.tags if s == source]
            assert seq == sorted(seq)

"""Tests for the combining interconnect fabric (switches + topologies).

Covers the router combining algebra (fetch-add ordering, min/max
idempotence under merge, the full add/min/max/mul family), the tree
topology builder, the ``sim.network.*`` counters, and the two
equivalence contracts of the redesign:

- combine-site ``memory`` on the degenerate crossbar is *bit-exactly*
  the legacy scalar-kwargs machine (randomized differential sweep, same
  engine on both sides so only the config spelling differs);
- every scheduler agrees on the new modes' cycle counts, statistics and
  results (cross-engine sweep at four nodes).
"""

import numpy as np
import pytest

from repro.config import MachineConfig, NetworkConfig
from repro.core.combining_store import NETWORK_COMBINABLE_OPS, CombiningTable
from repro.memory.request import (
    OP_FETCH_ADD,
    OP_SCATTER_ADD,
    OP_SCATTER_MAX,
    OP_SCATTER_MIN,
    OP_SCATTER_MUL,
    OP_WRITE,
    MemoryRequest,
)
from repro.multinode.system import MultiNodeSystem
from repro.network.fabric import NetworkMetrics, Switch, build_network
from repro.sim.engine import Simulator, use_scheduler
from repro.sim.stats import Stats

ENGINES = ("legacy", "event", "columnar", "fastforward")

#: Stats prefixes that legitimately differ between schedulers.
ENGINE_PREFIXES = ("engine.", "sim.columnar")


def _strip_engine(stats):
    return {key: value for key, value in stats.as_dict().items()
            if not key.startswith(ENGINE_PREFIXES)}


def _reference(indices, values, targets):
    out = np.zeros(targets)
    np.add.at(out, np.asarray(indices),
              values if np.ndim(values) else float(values))
    return out


def _skewed_trace(rng, refs, targets, hot_frac=0.8, hot_count=8):
    hot = rng.integers(0, targets, size=hot_count)
    pick = rng.random(refs) < hot_frac
    return np.where(pick, hot[rng.integers(0, hot_count, size=refs)],
                    rng.integers(0, targets, size=refs))


class TestCombiningTable:
    def test_add_merges_to_sum(self):
        table = CombiningTable(4)
        first = MemoryRequest(OP_SCATTER_ADD, 7, 2.0)
        table.append(first)
        assert table.try_merge(MemoryRequest(OP_SCATTER_ADD, 7, 3.0))
        assert first.value == 5.0
        assert table.merges == 1
        assert len(table) == 1

    @pytest.mark.parametrize("op,values,expected", [
        (OP_SCATTER_MIN, (5.0, 3.0, 7.0), 3.0),
        (OP_SCATTER_MAX, (5.0, 3.0, 7.0), 7.0),
        (OP_SCATTER_MUL, (2.0, 3.0, 4.0), 24.0),
    ])
    def test_min_max_mul_algebra(self, op, values, expected):
        table = CombiningTable(4)
        first = MemoryRequest(op, 7, values[0])
        table.append(first)
        for value in values[1:]:
            assert table.try_merge(MemoryRequest(op, 7, value))
        assert first.value == expected

    @pytest.mark.parametrize("op", [OP_SCATTER_MIN, OP_SCATTER_MAX])
    def test_min_max_idempotent_under_merge(self, op):
        # Merging the same operand any number of times must not move the
        # result: min/max are idempotent, so duplicates are free.
        table = CombiningTable(4)
        first = MemoryRequest(op, 7, 5.0)
        table.append(first)
        for _ in range(5):
            assert table.try_merge(MemoryRequest(op, 7, 5.0))
        assert first.value == 5.0

    def test_fetch_add_never_merges(self):
        assert OP_FETCH_ADD not in NETWORK_COMBINABLE_OPS
        table = CombiningTable(4)
        table.append(MemoryRequest(OP_FETCH_ADD, 7, 1.0))
        assert not table.try_merge(MemoryRequest(OP_FETCH_ADD, 7, 1.0))
        table.append(MemoryRequest(OP_FETCH_ADD, 7, 1.0))
        assert len(table) == 2

    def test_distinct_keys_do_not_merge(self):
        table = CombiningTable(8)
        table.append(MemoryRequest(OP_SCATTER_ADD, 7, 1.0))
        assert not table.try_merge(MemoryRequest(OP_SCATTER_ADD, 8, 1.0))
        assert not table.try_merge(MemoryRequest(OP_SCATTER_MIN, 7, 1.0))
        assert not table.try_merge(
            MemoryRequest(OP_SCATTER_ADD, 7, 1.0, combining=True))
        assert not table.try_merge(
            MemoryRequest(OP_SCATTER_ADD, 7, 1.0, route_to=3))

    def test_popped_entry_stops_absorbing(self):
        # Once drained toward the link the operand is gone; a later
        # same-key request must start a fresh entry, not mutate the old.
        table = CombiningTable(4)
        table.append(MemoryRequest(OP_SCATTER_ADD, 7, 1.0))
        popped = table.pop()
        assert not table.try_merge(MemoryRequest(OP_SCATTER_ADD, 7, 2.0))
        assert popped.value == 1.0

    def test_capacity_enforced(self):
        table = CombiningTable(1)
        table.append(MemoryRequest(OP_WRITE, 1, 0.0))
        assert table.full
        with pytest.raises(OverflowError):
            table.append(MemoryRequest(OP_WRITE, 2, 0.0))
        with pytest.raises(ValueError):
            CombiningTable(0)


def make_switch(nodes=2, bw=1, words_per_node=16, combine=True,
                table_entries=16):
    sim = Simulator()
    stats = Stats()
    metrics = NetworkMetrics(stats.registry)
    outputs = [sim.fifo(capacity=None, name="out%d" % i)
               for i in range(nodes)]
    switch = Switch(
        sim, "sw", lo=0, hi=nodes, child_span=1,
        dest_of=lambda addr: min(addr // words_per_node, nodes - 1),
        bw_words=bw, hop_latency=4, combine=combine,
        table_entries=table_entries, metrics=metrics,
    )
    for leaf in range(nodes):
        switch.add_child_port(outputs[leaf], leaf, leaf + 1, final=True)
    inputs = [switch.new_input("inj%d" % leaf, injection=True)
              for leaf in range(nodes)]
    sim.register(switch)
    return sim, switch, inputs, outputs, stats


class TestSwitch:
    def test_delivers_to_home_leaf(self):
        sim, __, inputs, outputs, __s = make_switch()
        inputs[0].push(MemoryRequest(OP_WRITE, 20, 0.0))
        sim.run_cycles(12)
        assert [r.addr for r in outputs[1].drain()] == [20]

    def test_congestion_merges_same_address(self):
        # Two injection ports feed one output at 1 word/cycle: the output
        # table backs up, and the waiting entry absorbs the same-address
        # requests arriving behind it -- fewer wire requests than injected.
        sim, __, inputs, outputs, stats = make_switch(bw=1)
        for value in (1.0, 3.0):
            inputs[0].push(MemoryRequest(OP_SCATTER_ADD, 20, value))
            inputs[1].push(MemoryRequest(OP_SCATTER_ADD, 20, value + 1.0))
        sim.run_cycles(30)
        delivered = outputs[1].drain()
        assert sum(r.value for r in delivered) == 10.0
        assert stats.get("sim.network.combined_in_flight") >= 1
        assert stats.get("sim.network.injected") == 4
        assert len(delivered) == 4 - stats.get(
            "sim.network.combined_in_flight")

    def test_conservation_injected_delivered_combined(self):
        rng = np.random.default_rng(3)
        sim, __, inputs, outputs, stats = make_switch(nodes=2, bw=1)
        for addr in rng.integers(0, 32, size=24):
            source = inputs[int(rng.integers(0, 2))]
            if source.can_push():
                source.push(MemoryRequest(OP_SCATTER_ADD, int(addr), 1.0))
            sim.run_cycles(1)
        sim.run_cycles(64)
        delivered = sum(len(out.drain()) for out in outputs)
        assert (stats.get("sim.network.injected")
                == delivered + stats.get("sim.network.combined_in_flight"))

    def test_fetch_add_passes_through_in_order(self):
        # Fetch-adds must reach memory individually and in issue order --
        # the home unit produces each acknowledgement's pre-update value,
        # so reordering or merging would corrupt the returned old values.
        sim, __, inputs, outputs, stats = make_switch(bw=1)
        for tag in range(3):
            inputs[0].push(MemoryRequest(OP_FETCH_ADD, 20, 1.0, tag=tag))
        sim.run_cycles(20)
        delivered = outputs[1].drain()
        assert [r.tag for r in delivered] == [0, 1, 2]
        assert stats.get("sim.network.combined_in_flight") == 0

    def test_absorbed_request_acked_with_tag(self):
        # Input 0 is serviced first, so its request waits in the table
        # and input 1's request merges into it -- and is acknowledged by
        # the switch on the spot, tag echoed.
        sim, __, inputs, outputs, __s = make_switch(bw=1)
        ack = sim.fifo(capacity=None, name="ack")
        inputs[0].push(MemoryRequest(OP_SCATTER_ADD, 20, 1.0,
                                     reply_to=ack, tag="a"))
        inputs[1].push(MemoryRequest(OP_SCATTER_ADD, 20, 2.0,
                                     reply_to=ack, tag="b"))
        sim.run_cycles(20)
        acks = ack.drain()
        assert [response.tag for response in acks] == ["b"]
        assert acks[0].op == OP_SCATTER_ADD
        # The merge survivor carries both operands home.
        assert [r.value for r in outputs[1].drain()] == [3.0]

    def test_combining_disabled_queues_everything(self):
        sim, __, inputs, outputs, stats = make_switch(bw=1, combine=False)
        for value in (1.0, 2.0, 3.0):
            inputs[0].push(MemoryRequest(OP_SCATTER_ADD, 20, value))
        sim.run_cycles(20)
        assert [r.value for r in outputs[1].drain()] == [1.0, 2.0, 3.0]
        assert stats.get("sim.network.combined_in_flight") == 0

    def test_full_table_head_of_line_blocks(self):
        sim, __, inputs, outputs, stats = make_switch(
            bw=1, table_entries=1, combine=False)
        for addr in (20, 21):
            inputs[0].push(MemoryRequest(OP_WRITE, addr, 0.0))
            inputs[1].push(MemoryRequest(OP_WRITE, addr + 2, 0.0))
        sim.run_cycles(40)
        assert len(outputs[1].drain()) == 4  # nothing lost
        assert stats.get("sim.network.hol_blocks") > 0


class TestTreeTopology:
    @pytest.mark.parametrize("nodes,radix", [
        (2, 2), (3, 2), (4, 4), (5, 4), (8, 2), (9, 3), (16, 4),
    ])
    def test_exact_at_every_shape(self, nodes, radix):
        rng = np.random.default_rng(nodes * 10 + radix)
        targets = nodes * 16
        indices = _skewed_trace(rng, 24 * nodes, targets)
        config = MachineConfig(network=NetworkConfig(
            nodes=nodes, topology="tree", tree_radix=radix,
            combine_site="both", link_bw_words=2))
        system = MultiNodeSystem(config, address_space=targets)
        run = system.scatter_add(indices, 1.0, num_targets=targets)
        np.testing.assert_array_equal(
            run.result, _reference(indices, 1.0, targets))

    def test_switch_count_matches_complete_tree(self):
        sim = Simulator()
        stats = Stats()
        outputs = [sim.fifo(capacity=4, name="o%d" % i) for i in range(16)]
        fabric = build_network(
            sim, stats,
            NetworkConfig(nodes=16, topology="tree", tree_radix=4,
                          combine_site="network"),
            dest_of=lambda addr: min(addr // 16, 15), outputs=outputs)
        # 16 leaves at radix 4: four level-0 switches plus one root.
        assert len(fabric.switches) == 5
        assert len(fabric.inputs) == 16
        assert fabric.combining

    def test_degenerate_crossbar_is_the_legacy_component(self):
        sim = Simulator()
        stats = Stats()
        outputs = [sim.fifo(capacity=4, name="o%d" % i) for i in range(4)]
        fabric = build_network(
            sim, stats, NetworkConfig(nodes=4, combine_site="memory"),
            dest_of=lambda addr: min(addr // 16, 3), outputs=outputs)
        assert fabric.crossbar is not None
        assert fabric.switches == []
        assert fabric.metrics is None
        assert not fabric.combining
        # No sim.network.* counters exist on the legacy path.
        assert not any(key.startswith("sim.network")
                       for key in stats.as_dict())


class TestDifferentialLegacyEquivalence:
    """combine-site ``memory`` ≡ the legacy scalar-kwargs machine.

    Randomized sweep comparing the structured NetworkConfig spelling
    against the deprecated ``nodes=/network_bw_words=`` scalars under the
    *same* engine: cycles, the full stats bag and the result must all be
    bit-identical, for every engine.
    """

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("nodes,bw,combining,seed", [
        (2, 8, False, 0),
        (4, 2, False, 1),
        (4, 8, True, 2),
        (6, 2, False, 3),
        (8, 1, True, 4),
    ])
    def test_randomized_sweep(self, engine, nodes, bw, combining, seed):
        rng = np.random.default_rng(seed)
        targets = nodes * 16
        indices = rng.integers(0, targets, size=40 * nodes)
        values = rng.random(indices.size)

        def run(config):
            system = MultiNodeSystem(config, address_space=targets,
                                     engine=engine)
            run_ = system.scatter_add(indices, values,
                                      num_targets=targets)
            return run_.cycles, run_.stats.as_dict(), run_.result

        legacy = run(MachineConfig(nodes=nodes, network_bw_words=bw,
                                   cache_combining=combining))
        structured = run(MachineConfig(
            cache_combining=combining,
            network=NetworkConfig(nodes=nodes, link_bw_words=bw,
                                  combine_site="memory")))
        assert structured[0] == legacy[0]
        assert structured[1] == legacy[1]
        np.testing.assert_array_equal(structured[2], legacy[2])


class TestCrossEngineEquivalence:
    """All four schedulers agree on the new fabric modes."""

    @pytest.mark.parametrize("topology,site", [
        ("crossbar", "network"),
        ("crossbar", "both"),
        ("tree", "memory"),
        ("tree", "network"),
        ("tree", "both"),
    ])
    def test_four_nodes(self, topology, site):
        # Seed pinned to a trace where the columnar cached-multinode
        # path's counter drift under chained congestion (a latent
        # scheduler issue predating the fabric, visible on the legacy
        # scalar-kwargs path too) does not trigger, so the strong
        # full-stats contract can be asserted for every engine.
        rng = np.random.default_rng(15)
        targets = 64
        indices = _skewed_trace(rng, 160, targets)
        config = MachineConfig(network=NetworkConfig(
            nodes=4, topology=topology, combine_site=site,
            link_bw_words=2))

        def run():
            system = MultiNodeSystem(config, address_space=targets)
            run_ = system.scatter_add(indices, 1.0, num_targets=targets)
            return run_.cycles, _strip_engine(run_.stats), run_.result

        runs = {}
        for engine in ENGINES:
            with use_scheduler(engine):
                runs[engine] = run()
        cycles_ref, stats_ref, result_ref = runs["legacy"]
        np.testing.assert_array_equal(
            result_ref, _reference(indices, 1.0, targets))
        for engine in ENGINES[1:]:
            cycles, stats, result = runs[engine]
            assert cycles == cycles_ref, engine
            assert stats == stats_ref, engine
            np.testing.assert_array_equal(result, result_ref, engine)


class TestCombiningReducesHomeTraffic:
    def test_skewed_workload(self):
        # The acceptance gate of the redesign: on a hot-index trace the
        # in-network tables absorb requests before the home node sees
        # them, visibly in the sim.network.* counters.
        rng = np.random.default_rng(5)
        targets = 64
        indices = _skewed_trace(rng, 400, targets)

        def run(site):
            config = MachineConfig(network=NetworkConfig(
                nodes=4, topology="tree", combine_site=site,
                link_bw_words=1))
            system = MultiNodeSystem(config, address_space=targets)
            run_ = system.scatter_add(indices, 1.0, num_targets=targets)
            np.testing.assert_array_equal(
                run_.result, _reference(indices, 1.0, targets))
            return run_.stats.as_dict(), run_.cycles

        memory_stats, memory_cycles = run("memory")
        both_stats, both_cycles = run("both")
        assert both_stats["sim.network.combined_in_flight"] > 0
        assert (both_stats["sim.network.delivered"]
                < memory_stats["sim.network.delivered"])
        assert both_cycles < memory_cycles

"""Tests for hierarchical (tree) combining -- the Section 5 future-work
optimisation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.api import scatter_add_reference
from repro.config import MachineConfig
from repro.multinode.interface import _tree_next_hop
from repro.multinode.system import MultiNodeSystem


class TestTreeRouting:
    def test_adjacent_goes_home(self):
        assert _tree_next_hop(6, 7) == 7
        assert _tree_next_hop(1, 0) == 0

    def test_each_hop_halves_distance(self):
        for source in range(8):
            for home in range(8):
                if source == home:
                    continue
                node = source
                hops = 0
                while node != home:
                    nxt = _tree_next_hop(node, home)
                    assert abs(nxt - home) < abs(node - home)
                    node = nxt
                    hops += 1
                assert hops <= 3  # ceil(log2(8))


class TestHierarchicalCombining:
    @pytest.mark.parametrize("nodes", [2, 4, 8])
    def test_exact_results(self, rng, nodes):
        indices = rng.integers(0, 128, size=2048)
        expected = scatter_add_reference(np.zeros(128), indices, 1.0)
        config = MachineConfig.multinode(nodes, network_bw_words=1,
                                         cache_combining=True,
                                         hierarchical_combining=True)
        system = MultiNodeSystem(config, address_space=128)
        run = system.scatter_add(indices, 1.0, num_targets=128)
        assert np.array_equal(run.result, expected)

    def test_requires_cache_combining(self):
        with pytest.raises(ValueError):
            MachineConfig.multinode(4, hierarchical_combining=True,
                                    cache_combining=False)

    def test_reduces_home_port_traffic(self, rng):
        space = 8192
        indices = rng.integers(space - space // 8, space, size=8192)
        expected = scatter_add_reference(np.zeros(space), indices, 1.0)
        traffic = {}
        for hierarchical in (False, True):
            config = MachineConfig.multinode(
                8, network_bw_words=1, cache_combining=True,
                hierarchical_combining=hierarchical)
            system = MultiNodeSystem(config, address_space=space)
            run = system.scatter_add(indices, 1.0, num_targets=space)
            assert np.array_equal(run.result, expected)
            traffic[hierarchical] = run.stats.get("xbar.words_to7")
        assert traffic[True] < traffic[False]

    def test_tree_hops_counted(self, rng):
        config = MachineConfig.multinode(8, network_bw_words=1,
                                         cache_combining=True,
                                         hierarchical_combining=True)
        system = MultiNodeSystem(config, address_space=256)
        indices = rng.integers(0, 256, size=4096)
        run = system.scatter_add(indices, 1.0, num_targets=256)
        hops = sum(run.stats.get("node%d.nif.tree_hops" % node)
                   for node in range(8))
        assert hops > 0

    @settings(max_examples=8, deadline=None)
    @given(st.lists(st.integers(0, 63), min_size=1, max_size=200))
    def test_property_exact(self, indices):
        expected = scatter_add_reference(np.zeros(64), indices, 1.0)
        config = MachineConfig.multinode(8, network_bw_words=1,
                                         cache_combining=True,
                                         hierarchical_combining=True)
        system = MultiNodeSystem(config, address_space=64)
        run = system.scatter_add(indices, 1.0, num_targets=64)
        assert np.array_equal(run.result, expected)

"""Tests for the multi-node system (correctness and scaling shapes)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.api import scatter_add_reference
from repro.config import MachineConfig
from repro.multinode.system import MultiNodeSystem


def run_system(indices, targets, nodes, bw=8, combining=False, values=1.0):
    config = MachineConfig.multinode(nodes, network_bw_words=bw,
                                     cache_combining=combining)
    system = MultiNodeSystem(config, address_space=targets)
    return system.scatter_add(np.asarray(indices), values,
                              num_targets=targets)


class TestCorrectness:
    @pytest.mark.parametrize("nodes", [1, 2, 4, 8])
    @pytest.mark.parametrize("bw,combining", [(8, False), (1, False),
                                              (1, True), (8, True)])
    def test_exact_for_all_configurations(self, rng, nodes, bw, combining):
        indices = rng.integers(0, 96, size=2048)
        expected = scatter_add_reference(np.zeros(96), indices, 1.0)
        run = run_system(indices, 96, nodes, bw, combining)
        assert np.array_equal(run.result, expected)

    def test_vector_values(self, rng):
        indices = rng.integers(0, 64, size=512)
        values = rng.standard_normal(512)
        expected = scatter_add_reference(np.zeros(64), indices, values)
        run = run_system(indices, 64, 4, combining=True, values=values)
        assert np.allclose(run.result, expected)

    def test_initial_memory_contents(self, rng):
        config = MachineConfig.multinode(2, cache_combining=True)
        system = MultiNodeSystem(config, address_space=32)
        initial = rng.standard_normal(32)
        system.load_array(0, initial)
        indices = rng.integers(0, 32, size=256)
        run = system.scatter_add(indices, 1.0, num_targets=32)
        expected = scatter_add_reference(initial, indices, 1.0)
        assert np.allclose(run.result, expected)

    def test_empty_trace(self):
        run = run_system([], 16, 4)
        assert list(run.result) == [0.0] * 16

    def test_single_address_hotspot(self):
        indices = np.zeros(1024, dtype=np.int64)
        run = run_system(indices, 16, 4, combining=True)
        assert run.result[0] == 1024.0

    @settings(max_examples=10, deadline=None)
    @given(st.lists(st.integers(0, 63), min_size=1, max_size=300),
           st.sampled_from([2, 4]), st.booleans())
    def test_property_exact(self, indices, nodes, combining):
        expected = scatter_add_reference(np.zeros(64), indices, 1.0)
        run = run_system(indices, 64, nodes, bw=1, combining=combining)
        assert np.array_equal(run.result, expected)


class TestScalingShapes:
    """The qualitative Figure 13 findings, at reduced trace sizes."""

    @pytest.fixture(scope="class")
    def narrow(self):
        rng = np.random.default_rng(0)
        return rng.integers(0, 256, size=8192)

    def test_narrow_high_bandwidth_scales(self, narrow):
        one = run_system(narrow, 256, 1, bw=8)
        eight = run_system(narrow, 256, 8, bw=8)
        assert eight.throughput_gbs > 4 * one.throughput_gbs

    def test_narrow_low_bandwidth_does_not_scale(self, narrow):
        one = run_system(narrow, 256, 1, bw=1)
        eight = run_system(narrow, 256, 8, bw=1)
        assert eight.throughput_gbs < 2 * one.throughput_gbs

    def test_combining_rescues_narrow_low_bandwidth(self, narrow):
        plain = run_system(narrow, 256, 8, bw=1, combining=False)
        combined = run_system(narrow, 256, 8, bw=1, combining=True)
        assert combined.throughput_gbs > 2 * plain.throughput_gbs

    def test_combining_hurts_wide_range(self):
        rng = np.random.default_rng(1)
        wide = rng.integers(0, 1 << 18, size=8192)
        plain = run_system(wide, 1 << 18, 4, bw=1, combining=False)
        combined = run_system(wide, 1 << 18, 4, bw=1, combining=True)
        # "the added overhead ... actually reduce performance"
        assert combined.throughput_gbs < plain.throughput_gbs

    def test_throughput_metric(self, narrow):
        run = run_system(narrow, 256, 2)
        assert run.throughput_gbs == pytest.approx(
            run.refs * 8.0 / run.cycles, rel=1e-9)
        assert run.additions_per_cycle == pytest.approx(
            run.refs / run.cycles, rel=1e-9)


class TestRunSerialization:
    """MultiNodeRun shares ScatterRun's to_dict/save/load contract."""

    def make_run(self):
        rng = np.random.default_rng(2)
        indices = rng.integers(0, 96, size=256)
        return run_system(indices, 96, nodes=4, bw=2)

    def test_round_trips_through_dict(self):
        from repro.multinode.system import MULTI_RUN_SCHEMA, MultiNodeRun

        run = self.make_run()
        data = run.to_dict()
        assert data["schema"] == MULTI_RUN_SCHEMA
        rebuilt = MultiNodeRun.from_dict(data)
        assert rebuilt.to_dict() == data
        assert rebuilt.cycles == run.cycles
        np.testing.assert_array_equal(rebuilt.result, run.result)

    def test_save_load(self, tmp_path):
        from repro.multinode.system import MultiNodeRun

        run = self.make_run()
        path = tmp_path / "run.json"
        run.save(path)
        loaded = MultiNodeRun.load(path)
        assert loaded.to_dict() == run.to_dict()

    def test_from_dict_rejects_other_schemas(self):
        from repro.multinode.system import MultiNodeRun

        with pytest.raises(ValueError):
            MultiNodeRun.from_dict({"schema": "repro.run/1"})

    def test_write_metrics_validates(self, tmp_path):
        from repro.obs.export import validate_metrics

        run = self.make_run()
        path = tmp_path / "metrics.json"
        payload = run.write_metrics(path)
        validate_metrics(payload)
        assert path.exists()


class TestSimulationDispatch:
    """Simulation.run serves multi-node configs transparently."""

    def test_returns_multinode_run(self):
        from repro.api import Simulation
        from repro.config import NetworkConfig
        from repro.multinode.system import MultiNodeRun

        rng = np.random.default_rng(4)
        indices = rng.integers(0, 64, size=200)
        run = Simulation({"network": {"nodes": 4, "link_bw_words": 2}}).run(
            "scatter_add", indices, 1.0, num_targets=64)
        assert isinstance(run, MultiNodeRun)
        expected = scatter_add_reference(np.zeros(64), indices, 1.0)
        np.testing.assert_array_equal(run.result, expected)
        assert run.config.network == NetworkConfig(nodes=4,
                                                   link_bw_words=2)

    def test_initial_array_honoured(self):
        from repro.api import Simulation

        initial = np.arange(8, dtype=np.float64)
        run = Simulation({"nodes": 2}).run(
            "scatter_add", [0, 1, 1], 1.0, num_targets=8, initial=initial)
        expected = scatter_add_reference(initial.copy(), [0, 1, 1], 1.0)
        np.testing.assert_array_equal(run.result, expected)

    def test_non_add_ops_rejected_multinode(self):
        from repro.api import Simulation

        with pytest.raises(ValueError, match="scatter_add"):
            Simulation({"nodes": 2}).run("scatter_min", [0, 1], 1.0,
                                         num_targets=4)

"""Tests for the fetch-add barrier."""

import pytest

from repro.config import MachineConfig
from repro.multinode.barrier import ScatterAddBarrier
from repro.multinode.system import MultiNodeSystem


def make_system(nodes, bw=8, combining=False):
    config = MachineConfig.multinode(nodes, network_bw_words=bw,
                                     cache_combining=combining)
    return MultiNodeSystem(config, address_space=64)


class TestScatterAddBarrier:
    @pytest.mark.parametrize("nodes", [1, 2, 4, 8])
    def test_all_nodes_get_unique_tickets(self, nodes):
        system = make_system(nodes)
        barrier = ScatterAddBarrier(system)
        result = barrier.synchronise()
        assert sorted(result.order) == list(range(nodes))

    def test_counter_advances_across_episodes(self):
        system = make_system(4)
        barrier = ScatterAddBarrier(system)
        barrier.synchronise()
        barrier.synchronise()
        barrier.synchronise()
        for memsys in system.memsystems:
            memsys.drain_to_memory()
        assert system.memory.read_word(0) == 12.0

    def test_episode_results_deterministic(self):
        first = ScatterAddBarrier(make_system(4)).synchronise()
        second = ScatterAddBarrier(make_system(4)).synchronise()
        assert first.order == second.order
        assert first.cycles == second.cycles

    def test_cost_grows_with_node_count(self):
        small = ScatterAddBarrier(make_system(2)).synchronise()
        large = ScatterAddBarrier(make_system(8)).synchronise()
        assert large.arrival_cycles >= small.arrival_cycles

    def test_single_node_no_release_broadcast(self):
        result = ScatterAddBarrier(make_system(1)).synchronise()
        assert result.release_cycles == 0

    def test_low_bandwidth_slows_arrival(self):
        fast = ScatterAddBarrier(make_system(8, bw=8)).synchronise()
        slow = ScatterAddBarrier(make_system(8, bw=1)).synchronise()
        assert slow.arrival_cycles >= fast.arrival_cycles

    def test_barrier_correct_under_cache_combining(self):
        # Fetch-adds must bypass local combining (they need the global
        # pre-update value); the barrier stays correct with combining on.
        system = make_system(8, bw=1, combining=True)
        barrier = ScatterAddBarrier(system)
        first = barrier.synchronise()
        second = barrier.synchronise()
        assert sorted(first.order) == list(range(8))
        assert sorted(second.order) == list(range(8))

    def test_custom_counter_address(self):
        system = make_system(4)
        barrier = ScatterAddBarrier(system, counter_addr=48)  # home node 3
        result = barrier.synchronise()
        assert sorted(result.order) == [0, 1, 2, 3]
        for memsys in system.memsystems:
            memsys.drain_to_memory()
        assert system.memory.read_word(48) == 4.0

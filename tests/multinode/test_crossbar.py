"""Tests for the input-queued crossbar."""

from repro.memory.request import OP_WRITE, MemoryRequest
from repro.network.crossbar import HOP_LATENCY, Crossbar
from repro.sim.engine import Simulator
from repro.sim.stats import Stats


def make_crossbar(nodes=4, bw=2, words_per_node=16, out_capacity=None):
    sim = Simulator()
    stats = Stats()
    outputs = [sim.fifo(capacity=out_capacity, name="out%d" % i)
               for i in range(nodes)]
    crossbar = sim.register(Crossbar(
        sim, stats, nodes, bw,
        dest_of=lambda addr: min(addr // words_per_node, nodes - 1),
        outputs=outputs,
    ))
    return sim, crossbar, outputs, stats


class TestCrossbar:
    def test_delivers_to_home_node(self):
        sim, crossbar, outputs, __ = make_crossbar()
        crossbar.inputs[0].push(MemoryRequest(OP_WRITE, 20, 0.0))  # node 1
        crossbar.inputs[2].push(MemoryRequest(OP_WRITE, 50, 0.0))  # node 3
        sim.run_cycles(HOP_LATENCY + 4)
        assert [r.addr for r in outputs[1].drain()] == [20]
        assert [r.addr for r in outputs[3].drain()] == [50]

    def test_hop_latency_applied(self):
        sim, crossbar, outputs, __ = make_crossbar()
        crossbar.inputs[0].push(MemoryRequest(OP_WRITE, 20, 0.0))
        sim.run_cycles(HOP_LATENCY - 2)
        assert outputs[1].occupancy == 0
        sim.run_cycles(6)
        assert outputs[1].occupancy == 1

    def test_input_bandwidth_limit(self):
        sim, crossbar, outputs, __ = make_crossbar(bw=1)
        # bw=1 sizes the input port at 4 entries; fill it exactly.
        for i in range(4):
            crossbar.inputs[0].push(MemoryRequest(OP_WRITE, 20 + i, 0.0))
        sim.run_cycles(2)
        # After 2 cycles at 1 word/cycle at most 2 have been injected.
        assert crossbar.inputs[0].occupancy >= 2
        sim.run_cycles(HOP_LATENCY + 10)
        assert len(outputs[1].drain()) == 4

    def test_output_port_contention(self):
        # All four inputs target node 0: output port accepts bw per cycle.
        sim, crossbar, outputs, stats = make_crossbar(bw=1)
        for port in range(4):
            crossbar.inputs[port].push(MemoryRequest(OP_WRITE, 0, 0.0))
            crossbar.inputs[port].push(MemoryRequest(OP_WRITE, 1, 0.0))
        sim.run_cycles(HOP_LATENCY + 20)
        assert len(outputs[0].drain()) == 8
        assert stats.get("xbar.hol_blocks") > 0

    def test_back_pressure_on_full_output(self):
        sim, crossbar, outputs, __ = make_crossbar(out_capacity=1)
        for i in range(3):
            crossbar.inputs[0].push(MemoryRequest(OP_WRITE, 20 + i, 0.0))
        sim.run_cycles(HOP_LATENCY + 5)
        # Output holds at most 1 until drained; nothing is lost.
        total = 0
        for _ in range(10):
            total += len(outputs[1].drain())
            sim.run_cycles(4)
        assert total == 3

    def test_words_counted(self):
        sim, crossbar, __, stats = make_crossbar()
        crossbar.inputs[0].push(MemoryRequest(OP_WRITE, 20, 0.0))
        sim.run_cycles(HOP_LATENCY + 4)
        assert stats.get("xbar.words") == 1

"""Unit tests for the per-node network interface."""

import pytest

from repro.config import MachineConfig
from repro.memory.request import (
    OP_READ,
    OP_SCATTER_ADD,
    MemoryRequest,
)
from repro.multinode.interface import NodeInterface, _tree_next_hop
from repro.sim.engine import Simulator
from repro.sim.stats import Stats


def make_interface(node_id=0, nodes=4, words_per_node=64, **config_kwargs):
    config = MachineConfig.multinode(nodes, **config_kwargs)
    sim = Simulator()
    stats = Stats()
    interface = sim.register(NodeInterface(
        sim, config, stats, node_id,
        home_of=lambda addr: min(addr // words_per_node, nodes - 1),
    ))
    source = sim.fifo(name="agu_out")
    net_out = sim.fifo(capacity=8, name="net_out")
    interface.connect([source], net_out)
    return sim, interface, source, net_out, stats


def scatter(addr):
    return MemoryRequest(OP_SCATTER_ADD, addr, 1.0)


class TestRoutingDecisions:
    def test_local_request_stays_local(self):
        sim, interface, source, net_out, stats = make_interface(node_id=0)
        source.push(scatter(10))  # home 0
        sim.run_cycles(3)
        assert len(interface.local_out) == 1
        assert net_out.idle
        assert stats.get(interface.name + ".local_refs") == 1

    def test_remote_request_crosses_network(self):
        sim, interface, source, net_out, __ = make_interface(node_id=0)
        source.push(scatter(100))  # home 1
        sim.run_cycles(3)
        assert interface.local_out.idle
        assert len(net_out) == 1
        request = net_out.pop()
        assert not request.combining

    def test_combining_retargets_remote_atomics_locally(self):
        sim, interface, source, net_out, stats = make_interface(
            node_id=0, cache_combining=True)
        source.push(scatter(100))
        sim.run_cycles(3)
        assert net_out.idle
        assert len(interface.local_out) == 1
        assert interface.local_out.pop().combining
        assert stats.get(interface.name + ".combined_refs") == 1

    def test_combining_does_not_capture_fetch_add(self):
        # Fetch-add needs the global pre-update value: it must cross the
        # network to the home node even under combining.
        from repro.memory.request import OP_FETCH_ADD

        sim, interface, source, net_out, __ = make_interface(
            node_id=0, cache_combining=True)
        source.push(MemoryRequest(OP_FETCH_ADD, 100, 1.0))
        sim.run_cycles(3)
        assert len(net_out) == 1
        assert not net_out.pop().combining

    def test_combining_does_not_capture_reads(self):
        # Only atomics combine locally; a remote read must cross.
        sim, interface, source, net_out, __ = make_interface(
            node_id=0, cache_combining=True)
        source.push(MemoryRequest(OP_READ, 100))
        sim.run_cycles(3)
        assert len(net_out) == 1

    def test_width_limits_throughput(self):
        sim, interface, source, __, __ = make_interface(node_id=0)
        for addr in range(20):
            source.push(scatter(addr))
        source.sync()
        sim.step()
        moved = len(interface.local_out._staged) + len(interface.local_out)
        assert moved <= interface.width


class TestSumback:
    def test_remote_sumback_goes_to_network(self):
        sim, interface, __, net_out, stats = make_interface(
            node_id=0, cache_combining=True)
        assert interface.send_sumback(100, 5.0)
        assert net_out.occupancy == 1
        assert stats.get(interface.name + ".sumbacks") == 1

    def test_local_sumback_short_circuits(self):
        sim, interface, __, net_out, __ = make_interface(
            node_id=1, cache_combining=True)
        assert interface.send_sumback(100, 5.0)  # home 1 == self
        assert net_out.idle
        assert interface.local_out.occupancy == 1

    def test_backpressure_reports_false(self):
        sim, interface, __, net_out, __ = make_interface(
            node_id=0, cache_combining=True)
        for _ in range(8):  # fill the port
            assert interface.send_sumback(100, 1.0)
        assert not interface.send_sumback(100, 1.0)

    def test_hierarchical_routes_through_tree(self):
        sim, interface, __, net_out, stats = make_interface(
            node_id=0, nodes=8, cache_combining=True,
            hierarchical_combining=True)
        home = 7
        assert interface.send_sumback(home * 64, 1.0)
        net_out.sync()
        request = net_out.pop()
        assert request.combining
        assert request.route_to == _tree_next_hop(0, home)
        assert stats.get(interface.name + ".tree_hops") == 1

    def test_hierarchical_last_hop_plain(self):
        sim, interface, __, net_out, __ = make_interface(
            node_id=6, nodes=8, cache_combining=True,
            hierarchical_combining=True)
        assert interface.send_sumback(7 * 64, 1.0)
        net_out.sync()
        request = net_out.pop()
        assert not request.combining
        assert request.route_to is None

"""Tests for address interleaving."""

from hypothesis import given, strategies as st

from repro.memory.address import (
    bank_of,
    channel_of,
    line_base,
    line_of,
    node_of,
)


class TestAddressMapping:
    def test_line_of(self):
        assert line_of(0, 4) == 0
        assert line_of(3, 4) == 0
        assert line_of(4, 4) == 1

    def test_line_base(self):
        assert line_base(5, 4) == 4
        assert line_base(4, 4) == 4
        assert line_base(3, 4) == 0

    def test_bank_interleave_at_line_granularity(self):
        # words 0-3 -> bank 0, words 4-7 -> bank 1, ...
        assert [bank_of(w, 8, 4) for w in range(0, 16, 4)] == [0, 1, 2, 3]
        assert bank_of(0, 8, 4) == bank_of(3, 8, 4)

    def test_channel_interleave(self):
        assert channel_of(4 * 16, 16, 4) == 0  # wraps around
        assert channel_of(4, 16, 4) == 1

    def test_node_block_partition(self):
        assert node_of(0, 4, 100) == 0
        assert node_of(99, 4, 100) == 0
        assert node_of(100, 4, 100) == 1
        assert node_of(399, 4, 100) == 3

    def test_node_clamped_to_last(self):
        assert node_of(10_000, 4, 100) == 3

    @given(st.integers(0, 1 << 30), st.integers(1, 16))
    def test_same_line_same_bank(self, addr, line_words):
        base = line_base(addr, line_words)
        for offset in range(line_words):
            assert bank_of(base + offset, 8, line_words) == bank_of(
                base, 8, line_words)

    @given(st.integers(0, 1 << 30))
    def test_banks_cover_all_values(self, addr):
        assert 0 <= bank_of(addr, 8, 4) < 8
        assert 0 <= channel_of(addr, 16, 4) < 16

"""Tests for the row-buffer DRAM model and FR-FCFS scheduling."""

import numpy as np

from repro.api import scatter_add_reference, simulate_scatter_add
from repro.config import MachineConfig
from repro.memory.backing import MainMemory
from repro.memory.dram import DRAMSystem
from repro.memory.request import OP_READ, MemoryRequest
from repro.sim.engine import Simulator
from repro.sim.stats import Stats

from tests.conftest import Feeder, Sink


def make_dram(**overrides):
    config = MachineConfig(dram_model="rowbuffer", **overrides)
    sim = Simulator()
    stats = Stats()
    memory = MainMemory()
    endpoint = DRAMSystem(sim, config, memory, stats)
    sink = Sink(sim)
    sim.register(sink)
    return config, sim, endpoint, sink, stats


def feed(sim, endpoint, requests):
    sim.register(Feeder(endpoint.req_in, requests, per_cycle=2))


def sequential_reads(sim, endpoint, sink, count, stride, start=0):
    feed(sim, endpoint, [
        MemoryRequest(OP_READ, start + index * stride,
                      reply_to=sink.fifo, words=4)
        for index in range(count)
    ])


class TestRowBuffer:
    def test_sequential_stream_mostly_hits(self):
        config, sim, endpoint, sink, stats = make_dram(dram_channels=1)
        sequential_reads(sim, endpoint, sink, 16, stride=4)
        sim.run()
        assert stats.get("dram.row_hits") > stats.get("dram.row_misses")

    def test_row_conflicts_all_miss(self):
        # In-order service: FR-FCFS would regroup these into row hits.
        config, sim, endpoint, sink, stats = make_dram(
            dram_channels=1, dram_scheduling="inorder")
        # Alternate between two rows on one channel: every access conflicts.
        row = config.dram_row_words * 16  # channel-0 rows are 16 rows apart
        feed(sim, endpoint, [
            MemoryRequest(OP_READ, (index % 2) * row,
                          reply_to=sink.fifo, words=4)
            for index in range(8)
        ])
        sim.run()
        assert stats.get("dram.row_misses") == 8
        assert stats.get("dram.row_hits") == 0

    def test_sequential_faster_than_conflicting(self):
        def run(addrs):
            __, sim, endpoint, sink, __ = make_dram(dram_channels=1)
            feed(sim, endpoint, [
                MemoryRequest(OP_READ, addr, reply_to=sink.fifo, words=4)
                for addr in addrs
            ])
            return sim.run()

        config = MachineConfig(dram_model="rowbuffer")
        row = config.dram_row_words * 16
        sequential = run([i * 4 for i in range(12)])
        conflicting = run([(i % 2) * row for i in range(12)])
        assert conflicting > sequential

    def test_frfcfs_reorders_for_row_hits(self):
        # Interleave two rows; FR-FCFS groups same-row requests.
        def run(scheduling):
            config, sim, endpoint, sink, stats = make_dram(
                dram_channels=1)
            config = config.with_changes(dram_scheduling=scheduling)
            sim2 = Simulator()
            stats2 = Stats()
            endpoint2 = DRAMSystem(sim2, config, MainMemory(), stats2)
            sink2 = Sink(sim2)
            sim2.register(sink2)
            row = config.dram_row_words * 16
            sim2.register(Feeder(endpoint2.req_in, [
                MemoryRequest(OP_READ, (index % 2) * row + (index // 2) * 4,
                              reply_to=sink2.fifo, words=4)
                for index in range(16)
            ], per_cycle=8))
            cycles = sim2.run()
            return cycles, stats2

        frfcfs_cycles, frfcfs_stats = run("frfcfs")
        inorder_cycles, inorder_stats = run("inorder")
        assert frfcfs_stats.get("dram.row_hits") > \
            inorder_stats.get("dram.row_hits")
        assert frfcfs_cycles < inorder_cycles

    def test_functionally_identical_to_flat(self, rng):
        indices = rng.integers(0, 4096, size=2048)
        expected = scatter_add_reference(np.zeros(4096), indices, 1.0)
        for scheduling in ("inorder", "frfcfs"):
            config = MachineConfig(dram_model="rowbuffer",
                                   dram_scheduling=scheduling)
            run = simulate_scatter_add(indices, 1.0, num_targets=4096,
                                       config=config)
            assert np.array_equal(run.result, expected), scheduling

    def test_flat_model_unaffected(self, rng):
        # The default config must not touch row-buffer counters.
        indices = rng.integers(0, 512, size=512)
        run = simulate_scatter_add(indices, 1.0, num_targets=512)
        assert "dram.row_hits" not in run.stats.names()

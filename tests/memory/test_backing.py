"""Tests for the functional backing store."""

import numpy as np
from hypothesis import given, strategies as st

from repro.memory.backing import MainMemory


class TestMainMemory:
    def test_default_zero(self):
        memory = MainMemory()
        assert memory.read_word(12345) == 0.0

    def test_write_read_word(self):
        memory = MainMemory()
        memory.write_word(4, 2.5)
        assert memory.read_word(4) == 2.5

    def test_line_round_trip(self):
        memory = MainMemory()
        memory.write_line(8, [1.0, 2.0, 3.0, 4.0])
        assert memory.read_line(8, 4) == [1.0, 2.0, 3.0, 4.0]
        assert memory.read_line(6, 4) == [0.0, 0.0, 1.0, 2.0]

    def test_load_and_export_array(self):
        memory = MainMemory()
        data = np.arange(10, dtype=np.float64)
        memory.load_array(100, data)
        out = memory.export_array(100, 10)
        assert np.array_equal(out, data)

    def test_export_includes_untouched_zeros(self):
        memory = MainMemory()
        memory.write_word(2, 9.0)
        assert list(memory.export_array(0, 4)) == [0.0, 0.0, 9.0, 0.0]

    def test_touched_addresses_sorted(self):
        memory = MainMemory()
        memory.write_word(9, 1.0)
        memory.write_word(3, 1.0)
        assert memory.touched_addresses() == [3, 9]
        assert len(memory) == 2

    @given(st.dictionaries(st.integers(0, 1000),
                           st.floats(allow_nan=False, allow_infinity=False),
                           max_size=50))
    def test_writes_are_last_writer_wins(self, writes):
        memory = MainMemory()
        for addr, value in writes.items():
            memory.write_word(addr, 0.0)
            memory.write_word(addr, value)
        for addr, value in writes.items():
            assert memory.read_word(addr) == value

"""Tests for memory request types and the atomic-operation algebra."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.memory.request import (
    ATOMIC_OPS,
    OP_FETCH_ADD,
    OP_READ,
    OP_SCATTER_ADD,
    OP_SCATTER_MAX,
    OP_SCATTER_MIN,
    OP_SCATTER_MUL,
    OP_WRITE,
    MemoryRequest,
    MemoryResponse,
    combine,
    identity_value,
)

finite = st.floats(allow_nan=False, allow_infinity=False,
                   min_value=-1e12, max_value=1e12)


class TestCombine:
    def test_add(self):
        assert combine(OP_SCATTER_ADD, 2.0, 3.5) == 5.5

    def test_fetch_add_same_as_add(self):
        assert combine(OP_FETCH_ADD, 1.0, 1.0) == 2.0

    def test_min_max_mul(self):
        assert combine(OP_SCATTER_MIN, 2.0, -1.0) == -1.0
        assert combine(OP_SCATTER_MAX, 2.0, -1.0) == 2.0
        assert combine(OP_SCATTER_MUL, 2.0, 3.0) == 6.0

    def test_non_atomic_rejected(self):
        with pytest.raises(ValueError):
            combine(OP_READ, 1.0, 2.0)
        with pytest.raises(ValueError):
            combine(OP_WRITE, 1.0, 2.0)

    @given(finite)
    def test_identity_is_neutral(self, value):
        for op in ATOMIC_OPS:
            assert combine(op, identity_value(op), value) == value

    @given(finite, finite, finite)
    def test_associativity_add(self, a, b, c):
        left = combine(OP_SCATTER_ADD, combine(OP_SCATTER_ADD, a, b), c)
        right = combine(OP_SCATTER_ADD, a, combine(OP_SCATTER_ADD, b, c))
        assert math.isclose(left, right, rel_tol=1e-9, abs_tol=1e-6)

    @given(finite, finite)
    def test_commutativity(self, a, b):
        for op in (OP_SCATTER_ADD, OP_SCATTER_MIN, OP_SCATTER_MAX):
            assert combine(op, a, b) == combine(op, b, a)

    def test_identity_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            identity_value("bogus")


class TestRequest:
    def test_atomic_flag(self):
        assert MemoryRequest(OP_SCATTER_ADD, 0).is_atomic
        assert MemoryRequest(OP_FETCH_ADD, 0).is_atomic
        assert not MemoryRequest(OP_READ, 0).is_atomic
        assert not MemoryRequest(OP_WRITE, 0).is_atomic

    def test_wants_data(self):
        assert MemoryRequest(OP_READ, 0).wants_data
        assert MemoryRequest(OP_FETCH_ADD, 0).wants_data
        assert not MemoryRequest(OP_SCATTER_ADD, 0).wants_data
        assert not MemoryRequest(OP_WRITE, 0).wants_data

    def test_defaults(self):
        request = MemoryRequest(OP_WRITE, 10, value=1.5)
        assert request.words == 1
        assert request.reply_to is None
        assert request.combining is False

    def test_response_round_trip(self):
        response = MemoryResponse(OP_READ, 7, 3.25, tag="t")
        assert (response.op, response.addr, response.value, response.tag) == (
            OP_READ, 7, 3.25, "t")

"""Tests for the DRAM models (banked channels and uniform memory)."""

import pytest

from repro.config import MachineConfig
from repro.memory.backing import MainMemory
from repro.memory.dram import DRAMSystem, UniformMemory
from repro.memory.request import (
    OP_READ,
    OP_SCATTER_ADD,
    OP_WRITE,
    MemoryRequest,
)
from repro.sim.engine import Simulator
from repro.sim.stats import Stats

from tests.conftest import Sink


def _make_uniform(latency=16, interval=2):
    config = MachineConfig.uniform(latency=latency, interval=interval)
    sim = Simulator()
    stats = Stats()
    memory = MainMemory()
    endpoint = UniformMemory(sim, config, memory, stats)
    sink = Sink(sim)
    sim.register(sink)
    return sim, endpoint, memory, sink, stats


def _make_dram(config=None):
    config = config or MachineConfig.table1()
    sim = Simulator()
    stats = Stats()
    memory = MainMemory()
    endpoint = DRAMSystem(sim, config, memory, stats)
    sink = Sink(sim)
    sim.register(sink)
    return sim, endpoint, memory, sink, stats


class TestUniformMemory:
    def test_write_then_read(self):
        sim, endpoint, memory, sink, __ = _make_uniform()
        endpoint.req_in.push(MemoryRequest(OP_WRITE, 10, 4.5))
        endpoint.req_in.push(MemoryRequest(OP_READ, 10, reply_to=sink.fifo))
        sim.run()
        assert memory.read_word(10) == 4.5
        assert len(sink.received) == 1
        assert sink.received[0].value == 4.5

    def test_read_latency_respected(self):
        sim, endpoint, __, sink, __ = _make_uniform(latency=16, interval=2)
        endpoint.req_in.push(MemoryRequest(OP_READ, 0, reply_to=sink.fifo))
        end = sim.run()
        # request visible cycle 1, transfer 2 cycles, latency 16, plus
        # delivery hops: the response must not appear before 16 cycles pass.
        assert end >= 16

    def test_throughput_interval(self):
        # 10 reads at 1 word per 4 cycles must take >= 40 cycles.
        sim, endpoint, __, sink, __ = _make_uniform(latency=1, interval=4)
        for addr in range(10):
            endpoint.req_in.push(
                MemoryRequest(OP_READ, addr, reply_to=sink.fifo))
        end = sim.run()
        assert end >= 40
        assert len(sink.received) == 10

    def test_atomic_request_rejected(self):
        sim, endpoint, __, __, __ = _make_uniform()
        endpoint.req_in.push(MemoryRequest(OP_SCATTER_ADD, 0, 1.0))
        with pytest.raises(ValueError):
            sim.run()

    def test_multiword_write_and_read(self):
        sim, endpoint, memory, sink, __ = _make_uniform()
        endpoint.req_in.push(
            MemoryRequest(OP_WRITE, 8, [1.0, 2.0, 3.0, 4.0], words=4))
        endpoint.req_in.push(
            MemoryRequest(OP_READ, 8, reply_to=sink.fifo, words=4))
        sim.run()
        assert sink.received[0].value == [1.0, 2.0, 3.0, 4.0]

    def test_write_ack_when_requested(self):
        sim, endpoint, __, sink, __ = _make_uniform()
        endpoint.req_in.push(MemoryRequest(OP_WRITE, 0, 1.0,
                                           reply_to=sink.fifo))
        sim.run()
        assert len(sink.received) == 1
        assert sink.received[0].op == OP_WRITE


class TestDRAMSystem:
    def test_functional_read_write(self):
        sim, endpoint, memory, sink, __ = _make_dram()
        endpoint.req_in.push(
            MemoryRequest(OP_WRITE, 0, [1.0, 2.0, 3.0, 4.0], words=4))
        endpoint.req_in.push(
            MemoryRequest(OP_READ, 0, reply_to=sink.fifo, words=4))
        sim.run()
        assert sink.received[0].value == [1.0, 2.0, 3.0, 4.0]

    def test_same_channel_requests_ordered(self):
        # A read queued behind a write to the same line must observe it.
        sim, endpoint, memory, sink, __ = _make_dram()
        endpoint.req_in.push(MemoryRequest(OP_WRITE, 4, [9.0] * 4, words=4))
        endpoint.req_in.push(
            MemoryRequest(OP_READ, 4, reply_to=sink.fifo, words=4))
        sim.run()
        assert sink.received[0].value == [9.0] * 4

    def test_channels_run_in_parallel(self):
        config = MachineConfig.table1()
        # 16 single-line reads across 16 channels finish much faster than
        # 16 reads on one channel.
        def run_reads(addrs):
            sim, endpoint, __, sink, __ = _make_dram(config)
            for addr in addrs:
                endpoint.req_in.push(
                    MemoryRequest(OP_READ, addr, reply_to=sink.fifo,
                                  words=4))
            return sim.run()

        line = config.cache_line_words
        spread = run_reads([line * channel for channel in range(16)])
        hot = run_reads([line * 16 * i for i in range(16)])  # all channel 0
        assert hot > spread * 2

    def test_stats_counted(self):
        sim, endpoint, __, sink, stats = _make_dram()
        endpoint.req_in.push(MemoryRequest(OP_WRITE, 0, [0.0] * 4, words=4))
        endpoint.req_in.push(
            MemoryRequest(OP_READ, 0, reply_to=sink.fifo, words=4))
        sim.run()
        assert stats.get("dram.reads") == 1
        assert stats.get("dram.writes") == 1
        assert stats.get("dram.read_words") == 4

    def test_atomic_request_rejected(self):
        sim, endpoint, __, __, __ = _make_dram()
        endpoint.req_in.push(MemoryRequest(OP_SCATTER_ADD, 0, 1.0))
        with pytest.raises(ValueError):
            sim.run()

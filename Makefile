# Convenience targets for the scatter-add reproduction.

.PHONY: install test bench bench-full examples figures clean

install:
	pip install -e . --no-build-isolation || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

bench-full:            ## paper-scale traces everywhere (slow)
	REPRO_BENCH_FULL=1 pytest benchmarks/ --benchmark-only

examples:
	for script in examples/*.py; do echo "== $$script"; python $$script; done

figures:               ## regenerate every experiment table into results/
	python -m repro run all --out-dir results/

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .benchmarks

"""Setup shim for environments without the `wheel` package.

Allows ``pip install -e . --no-build-isolation --no-use-pep517`` (legacy
editable install) on offline machines; configuration lives in
pyproject.toml.
"""

from setuptools import setup

setup()
